package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specchar/internal/client"
)

// LoadConfig parameterizes one load-test phase against a running scoring
// daemon: Concurrency closed-loop clients each fire back-to-back score
// requests of Batch samples for Duration.
type LoadConfig struct {
	// URL is the daemon base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// Model names the registry entry to score.
	Model string
	// Samples is the pool of schema-width sample vectors requests draw
	// from (round-robin).
	Samples [][]float64
	// Batch is the number of samples per request.
	Batch int
	// Concurrency is the number of closed-loop client goroutines.
	Concurrency int
	// Duration is how long the phase runs.
	Duration time.Duration
}

// LoadResult is one phase's aggregate: counts, throughput, and request
// latency quantiles.
type LoadResult struct {
	Batch            int     `json:"batch"`
	Concurrency      int     `json:"concurrency"`
	DurationSeconds  float64 `json:"duration_seconds"`
	Requests         int64   `json:"requests"`
	Failed           int64   `json:"failed"`
	Samples          int64   `json:"samples"`
	QPS              float64 `json:"qps"`
	SamplesPerSecond float64 `json:"samples_per_second"`
	P50LatencyMs     float64 `json:"p50_latency_ms"`
	P99LatencyMs     float64 `json:"p99_latency_ms"`
	MaxLatencyMs     float64 `json:"max_latency_ms"`
}

// RunLoad drives one load phase and aggregates the results. It goes
// through the typed client with every resilience layer disabled —
// retries, budget, and breaker would silently reshape the measured
// distribution, and saturation behaviour (429s under overload) is
// exactly what the harness measures. A request counts as failed when
// the daemon answers anything but 200 or the transport errors; the
// first failure is carried in the returned error alongside the result
// for diagnosis, but failures do not abort the phase.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.Batch <= 0 || cfg.Concurrency <= 0 || len(cfg.Samples) == 0 {
		return nil, fmt.Errorf("serve: load config needs batch, concurrency and samples")
	}
	// Pre-marshal a rotation of request bodies so client-side JSON cost
	// stays off the hot loop.
	bodies := make([][]byte, 8)
	for i := range bodies {
		rows := make([][]float64, cfg.Batch)
		for j := range rows {
			rows[j] = cfg.Samples[(i*cfg.Batch+j)%len(cfg.Samples)]
		}
		b, err := json.Marshal(scoreRequest{Model: cfg.Model, Samples: rows})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}}
	defer hc.CloseIdleConnections()
	cl, err := client.New(client.Config{
		BaseURL:       cfg.URL,
		HTTPClient:    hc,
		MaxRetries:    -1,
		RetryBudget:   -1,
		BreakerWindow: -1,
	})
	if err != nil {
		return nil, err
	}

	phaseCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var (
		requests, failed, samples atomic.Int64
		mu                        sync.Mutex
		latencies                 []time.Duration
		firstFailure              atomic.Pointer[string]
	)
	var wg sync.WaitGroup
	begin := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			for i := 0; phaseCtx.Err() == nil; i++ {
				body := bodies[(c+i)%len(bodies)]
				t0 := time.Now()
				if _, err := cl.ScoreBytes(phaseCtx, body); err != nil {
					if phaseCtx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
						break // the phase deadline canceled this request, not a fault
					}
					failed.Add(1)
					requests.Add(1)
					msg := err.Error()
					firstFailure.CompareAndSwap(nil, &msg)
					continue
				}
				requests.Add(1)
				samples.Add(int64(cfg.Batch))
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin).Seconds()

	res := &LoadResult{
		Batch:           cfg.Batch,
		Concurrency:     cfg.Concurrency,
		DurationSeconds: elapsed,
		Requests:        requests.Load(),
		Failed:          failed.Load(),
		Samples:         samples.Load(),
	}
	if elapsed > 0 {
		res.QPS = float64(res.Requests-res.Failed) / elapsed
		res.SamplesPerSecond = float64(res.Samples) / elapsed
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50LatencyMs = quantileMS(latencies, 0.50)
		res.P99LatencyMs = quantileMS(latencies, 0.99)
		res.MaxLatencyMs = float64(latencies[len(latencies)-1]) / 1e6
	}
	if msg := firstFailure.Load(); msg != nil {
		return res, fmt.Errorf("serve: %d/%d requests failed (first: %s)", res.Failed, res.Requests, *msg)
	}
	return res, nil
}

// quantileMS reads the q-quantile (nearest-rank) off a sorted latency
// slice, in milliseconds.
func quantileMS(sorted []time.Duration, q float64) float64 {
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / 1e6
}
