package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"specchar/internal/dataset"
	"specchar/internal/obs"
)

// ErrOverloaded rejects a request whose model already has MaxPending
// samples queued — the admission-control bound. Clients should back off
// and retry.
var ErrOverloaded = errors.New("serve: model queue full")

// ErrDraining rejects work submitted while the server is shutting down.
var ErrDraining = errors.New("serve: server draining")

// ErrModelGone fails queued requests whose model was removed between
// admission and scoring.
var ErrModelGone = errors.New("serve: model removed while queued")

// scoreJob is one admitted request waiting to be batched: the rows to
// score, and the slots the dispatcher fills before closing done.
type scoreJob struct {
	rows    [][]float64
	out     []float64
	version int
	err     error
	done    chan struct{}
}

// batcher owns one model's bounded queue and dispatcher goroutine.
//
// Admission is sample-count based: pending tracks queued samples across
// jobs and submit rejects instantly once it would exceed MaxPending, so
// a hot model sheds load at the door instead of stacking goroutines.
// The dispatcher coalesces queued jobs into batches of up to MaxBatch
// samples, lingering at most BatchWait once it holds a partial batch,
// and scores each batch through one PredictDataset call against the
// model resolved at flush time — which is what makes registry hot-swaps
// take effect between batches with zero failed requests.
type batcher struct {
	s     *Server
	model string

	jobs    chan *scoreJob
	pending atomic.Int64 // queued samples, bounded by MaxPending

	// drainMu fences admission against shutdown: submit enqueues under
	// RLock, close flips draining under Lock before closing quit. Without
	// the fence a submit racing close could enqueue after the dispatcher's
	// final drain and wait forever on a job nothing will ever flush.
	drainMu  sync.RWMutex
	draining bool

	quit     chan struct{} // closed by close(); dispatcher drains then exits
	done     sync.WaitGroup
	closeOne sync.Once
}

func newBatcher(s *Server, model string) *batcher {
	b := &batcher{
		s:     s,
		model: model,
		// Job slots are bounded by worst case one-sample jobs filling the
		// pending budget; the channel is never the admission limit.
		jobs: make(chan *scoreJob, s.cfg.MaxPending),
		quit: make(chan struct{}),
	}
	b.done.Add(1)
	go b.run()
	return b
}

// submit admits the rows (or rejects with ErrOverloaded/ErrDraining),
// waits for the dispatcher to score them, and returns the predictions
// plus the model version that produced them. A canceled request context
// abandons the wait — the batch still scores, the result is discarded.
func (b *batcher) submit(ctx context.Context, rows [][]float64) ([]float64, int, error) {
	n := int64(len(rows))
	if n == 0 {
		return nil, 0, nil
	}
	b.drainMu.RLock()
	if b.draining {
		b.drainMu.RUnlock()
		return nil, 0, ErrDraining
	}
	if b.pending.Add(n) > int64(b.s.cfg.MaxPending) {
		b.pending.Add(-n)
		b.drainMu.RUnlock()
		b.s.count("specchard_rejected_total")
		return nil, 0, fmt.Errorf("%w: %q has %d samples pending (cap %d)",
			ErrOverloaded, b.model, b.pending.Load(), b.s.cfg.MaxPending)
	}
	job := &scoreJob{rows: rows, done: make(chan struct{})}
	// Never blocks: admitted samples are capped at MaxPending, every job
	// carries at least one sample, and the channel holds MaxPending slots.
	b.jobs <- job
	b.drainMu.RUnlock()
	select {
	case <-job.done:
		return job.out, job.version, job.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// close stops admission, then stops the dispatcher after it drains the
// queue. Idempotent. Every job enqueued before close returns is scored.
func (b *batcher) close() {
	b.closeOne.Do(func() {
		b.drainMu.Lock()
		b.draining = true
		b.drainMu.Unlock()
		close(b.quit)
	})
	b.done.Wait()
}

// run is the dispatcher loop: pull one job, gather more into the batch
// (up to MaxBatch samples, lingering BatchWait), flush, repeat. On quit
// it drains everything already queued — shutdown scores admitted work
// rather than erroring it.
func (b *batcher) run() {
	defer b.done.Done()
	for {
		select {
		case j := <-b.jobs:
			b.flush(b.gather(j))
		case <-b.quit:
			for {
				select {
				case j := <-b.jobs:
					b.flush(b.gather(j))
				default:
					return
				}
			}
		}
	}
}

// gather collects queued jobs behind first until the batch holds
// MaxBatch samples or BatchWait elapses. A single over-wide job (a
// request carrying more than MaxBatch samples) still scores as one
// batch.
func (b *batcher) gather(first *scoreJob) []*scoreJob {
	batch := []*scoreJob{first}
	total := len(first.rows)
	if total >= b.s.cfg.MaxBatch {
		return batch
	}
	linger := time.NewTimer(b.s.cfg.BatchWait)
	defer linger.Stop()
	for total < b.s.cfg.MaxBatch {
		select {
		case j := <-b.jobs:
			batch = append(batch, j)
			total += len(j.rows)
		case <-linger.C:
			return batch
		case <-b.quit:
			return batch
		}
	}
	return batch
}

// flush scores one batch: resolve the model now (hot-swap point), pack
// every job's rows into one dataset, one PredictDataset call, scatter
// the outputs back, release the admission budget.
func (b *batcher) flush(batch []*scoreJob) {
	total := 0
	for _, j := range batch {
		total += len(j.rows)
	}
	defer func() {
		b.pending.Add(-int64(total))
		for _, j := range batch {
			close(j.done)
		}
	}()

	m, ok := b.s.reg.Get(b.model)
	if !ok {
		for _, j := range batch {
			j.err = fmt.Errorf("%w: %q", ErrModelGone, b.model)
		}
		return
	}

	ctx, span := b.s.rec.StartSpan(b.s.baseCtx, "serve.batch",
		obs.A("model", b.model), obs.A("jobs", len(batch)))
	span.SetRows(total)
	defer span.End()

	ds := &dataset.Dataset{Schema: m.Tree.Schema(), Samples: make([]dataset.Sample, 0, total)}
	for _, j := range batch {
		for _, row := range j.rows {
			ds.Samples = append(ds.Samples, dataset.Sample{X: row})
		}
	}
	preds, err := m.Tree.WithWorkers(b.s.cfg.Workers).PredictDatasetCheckedContext(ctx, ds)
	if err != nil {
		// Width mismatches here mean the model was swapped to an
		// incompatible schema after the handler validated; each job gets
		// the inspectable error.
		for _, j := range batch {
			j.err = err
		}
		return
	}
	off := 0
	for _, j := range batch {
		j.out = preds[off : off+len(j.rows) : off+len(j.rows)]
		j.version = m.Version
		off += len(j.rows)
	}
	b.s.rec.VolatileCounter("specchard_batches_total").Add(1)
	b.s.rec.Gauge("specchard_last_batch_samples").Set(float64(total))
}
