package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"specchar/internal/dataset"
	"specchar/internal/faultinject"
	"specchar/internal/mtree"
	"specchar/internal/obs"
	"specchar/internal/robust"
)

// ErrOverloaded rejects a request whose model already has MaxPending
// samples queued — the admission-control bound. Clients should back off
// and retry.
var ErrOverloaded = errors.New("serve: model queue full")

// ErrDraining rejects work submitted while the server is shutting down.
var ErrDraining = errors.New("serve: server draining")

// ErrModelGone fails queued requests whose model was removed between
// admission and scoring.
var ErrModelGone = errors.New("serve: model removed while queued")

// scoreJob is one admitted request waiting to be batched: the rows to
// score, the request's deadline (zero if none), and the slots the
// dispatcher fills before closing done.
type scoreJob struct {
	rows     [][]float64
	deadline time.Time
	out      []float64
	version  int
	err      error
	done     chan struct{}
}

// batcher owns one model's bounded queue and dispatcher goroutine.
//
// Admission is sample-count based: pending tracks queued samples across
// jobs and submit rejects instantly once it would exceed MaxPending, so
// a hot model sheds load at the door instead of stacking goroutines.
// The dispatcher coalesces queued jobs into batches of up to MaxBatch
// samples, lingering at most BatchWait once it holds a partial batch,
// and scores each batch through one PredictDataset call against the
// model resolved at flush time — which is what makes registry hot-swaps
// take effect between batches with zero failed requests.
type batcher struct {
	s     *Server
	model string

	jobs    chan *scoreJob
	pending atomic.Int64 // queued samples, bounded by MaxPending

	// drainMu fences admission against shutdown: submit enqueues under
	// RLock, close flips draining under Lock before closing quit. Without
	// the fence a submit racing close could enqueue after the dispatcher's
	// final drain and wait forever on a job nothing will ever flush.
	drainMu  sync.RWMutex
	draining bool

	quit     chan struct{} // closed by close(); dispatcher drains then exits
	done     sync.WaitGroup
	closeOne sync.Once
}

func newBatcher(s *Server, model string) *batcher {
	b := &batcher{
		s:     s,
		model: model,
		// Job slots are bounded by worst case one-sample jobs filling the
		// pending budget; the channel is never the admission limit.
		jobs: make(chan *scoreJob, s.cfg.MaxPending),
		quit: make(chan struct{}),
	}
	b.done.Add(1)
	go b.run()
	return b
}

// submit admits the rows (or rejects with ErrOverloaded/ErrDraining),
// waits for the dispatcher to score them, and returns the predictions
// plus the model version that produced them. A canceled request context
// abandons the wait — the batch still scores, the result is discarded.
func (b *batcher) submit(ctx context.Context, rows [][]float64) ([]float64, int, error) {
	n := int64(len(rows))
	if n == 0 {
		return nil, 0, nil
	}
	// Work that is already dead on arrival never enters the queue.
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			b.s.count("specchard_deadline_rejected_total")
		}
		return nil, 0, err
	}
	b.drainMu.RLock()
	if b.draining {
		b.drainMu.RUnlock()
		return nil, 0, ErrDraining
	}
	if b.pending.Add(n) > int64(b.s.cfg.MaxPending) {
		b.pending.Add(-n)
		b.drainMu.RUnlock()
		b.s.count("specchard_rejected_total")
		return nil, 0, fmt.Errorf("%w: %q has %d samples pending (cap %d)",
			ErrOverloaded, b.model, b.pending.Load(), b.s.cfg.MaxPending)
	}
	job := &scoreJob{rows: rows, done: make(chan struct{})}
	if dl, ok := ctx.Deadline(); ok {
		job.deadline = dl
	}
	// Never blocks: admitted samples are capped at MaxPending, every job
	// carries at least one sample, and the channel holds MaxPending slots.
	b.jobs <- job
	b.drainMu.RUnlock()
	select {
	case <-job.done:
		return job.out, job.version, job.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// close stops admission, then stops the dispatcher after it drains the
// queue. Idempotent. Every job enqueued before close returns is scored.
func (b *batcher) close() {
	b.closeOne.Do(func() {
		b.drainMu.Lock()
		b.draining = true
		b.drainMu.Unlock()
		close(b.quit)
	})
	b.done.Wait()
}

// run is the dispatcher loop: pull one job, gather more into the batch
// (up to MaxBatch samples, lingering BatchWait), flush, repeat. On quit
// it drains everything already queued — shutdown scores admitted work
// rather than erroring it.
func (b *batcher) run() {
	defer b.done.Done()
	for {
		select {
		case j := <-b.jobs:
			b.flush(b.gather(j))
		case <-b.quit:
			for {
				select {
				case j := <-b.jobs:
					b.flush(b.gather(j))
				default:
					return
				}
			}
		}
	}
}

// gather collects queued jobs behind first until the batch holds
// MaxBatch samples or the linger window closes. The window is BatchWait
// bounded by the earliest deadline in the batch — a batch holding a
// nearly-expired request flushes early instead of lingering it to
// death. A single over-wide job (a request carrying more than MaxBatch
// samples) still scores as one batch.
func (b *batcher) gather(first *scoreJob) []*scoreJob {
	batch := []*scoreJob{first}
	total := len(first.rows)
	if total >= b.s.cfg.MaxBatch {
		return batch
	}
	wake := time.Now().Add(b.s.cfg.BatchWait)
	if !first.deadline.IsZero() && first.deadline.Before(wake) {
		wake = first.deadline
	}
	linger := time.NewTimer(time.Until(wake))
	defer linger.Stop()
	for total < b.s.cfg.MaxBatch {
		select {
		case j := <-b.jobs:
			batch = append(batch, j)
			total += len(j.rows)
			if !j.deadline.IsZero() && j.deadline.Before(wake) {
				wake = j.deadline
				if !linger.Stop() {
					select {
					case <-linger.C:
					default:
					}
				}
				linger.Reset(time.Until(wake))
			}
		case <-linger.C:
			return batch
		case <-b.quit:
			return batch
		}
	}
	return batch
}

// flush completes one batch: shed jobs that expired while queued, score
// the rest, release the admission budget. Every job's done channel
// closes exactly once no matter what scoring does — a panic inside the
// tree is contained to this batch (the jobs fail with the inspectable
// PanicError, the dispatcher lives on) instead of taking the daemon
// down with queued work still waiting.
func (b *batcher) flush(batch []*scoreJob) {
	total := 0
	for _, j := range batch {
		total += len(j.rows)
	}
	defer func() {
		b.pending.Add(-int64(total))
		for _, j := range batch {
			close(j.done)
		}
	}()

	// Shed expired work before spending scoring time on it: the waiting
	// handler already gave up, and scoring it anyway would only delay the
	// live jobs behind it.
	now := time.Now()
	live := make([]*scoreJob, 0, len(batch))
	for _, j := range batch {
		if !j.deadline.IsZero() && now.After(j.deadline) {
			j.err = fmt.Errorf("deadline expired %v before scoring: %w", now.Sub(j.deadline), context.DeadlineExceeded)
			b.s.count("specchard_deadline_rejected_total")
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	if err := robust.Safely(func() error {
		faultinject.Sleep("serve.batch.flush")
		faultinject.CheckPanic("serve.batch.flush")
		b.score(live)
		return nil
	}); err != nil {
		b.s.count("specchard_batch_panics_total")
		for _, j := range live {
			if j.err == nil && j.out == nil {
				j.err = err
			}
		}
	}
}

// score resolves the model now (the hot-swap point), packs every live
// job's rows into one batch, scores it, and scatters the outputs back.
// Wide coalesced batches (ColumnarMin or more samples of uniform width)
// go through the fused-columnar route: the rows are packed into one
// contiguous column-major slab, so the kernel streams a single
// allocation instead of chasing per-request row pointers scattered
// across the decoder's heap. Fused-columnar scoring is bit-identical to
// the row path (see internal/mtree/transpose.go), so which route a
// batch took is unobservable in the predictions.
func (b *batcher) score(live []*scoreJob) {
	total := 0
	for _, j := range live {
		total += len(j.rows)
	}
	m, ok := b.s.reg.Get(b.model)
	if !ok {
		for _, j := range live {
			j.err = fmt.Errorf("%w: %q", ErrModelGone, b.model)
		}
		return
	}

	ctx, span := b.s.rec.StartSpan(b.s.baseCtx, "serve.batch",
		obs.A("model", b.model), obs.A("jobs", len(live)))
	span.SetRows(total)
	defer span.End()

	tree := m.Tree.WithWorkers(b.s.cfg.Workers)
	preds, err := b.scoreColumnar(ctx, tree, live, total)
	if preds == nil && err == nil {
		// Batch below the columnar threshold, or rows of mixed width (a
		// mid-queue hot-swap to a different schema): the row path scores
		// what it can and reports width errors inspectably.
		ds := &dataset.Dataset{Schema: tree.Schema(), Samples: make([]dataset.Sample, 0, total)}
		for _, j := range live {
			for _, row := range j.rows {
				ds.Samples = append(ds.Samples, dataset.Sample{X: row})
			}
		}
		preds, err = tree.PredictDatasetCheckedContext(ctx, ds)
	}
	if err != nil {
		// Width mismatches here mean the model was swapped to an
		// incompatible schema after the handler validated; each job gets
		// the inspectable error.
		for _, j := range live {
			j.err = err
		}
		return
	}
	off := 0
	for _, j := range live {
		j.out = preds[off : off+len(j.rows) : off+len(j.rows)]
		j.version = m.Version
		off += len(j.rows)
	}
	b.s.rec.VolatileCounter("specchard_batches_total").Add(1)
	b.s.rec.Gauge("specchard_last_batch_samples").Set(float64(total))
}

// scoreColumnar packs the live jobs' rows into one column-major slab
// and scores it through the fused-columnar route. Returns (nil, nil)
// when the batch should take the row path instead: below the
// ColumnarMin threshold, the route disabled, or any row's width
// disagreeing with the model's schema.
func (b *batcher) scoreColumnar(ctx context.Context, tree *mtree.CompiledTree, live []*scoreJob, total int) ([]float64, error) {
	min := b.s.cfg.ColumnarMin
	if min <= 0 || total < min {
		return nil, nil
	}
	w := tree.NumAttrs()
	for _, j := range live {
		for _, row := range j.rows {
			if len(row) != w {
				return nil, nil
			}
		}
	}
	slab := make([]float64, total*w)
	cols := make([][]float64, w)
	for a := 0; a < w; a++ {
		cols[a] = slab[a*total : (a+1)*total : (a+1)*total]
	}
	i := 0
	for _, j := range live {
		for _, row := range j.rows {
			for a, v := range row {
				cols[a][i] = v
			}
			i++
		}
	}
	preds, err := tree.PredictColumnsCheckedContext(ctx, cols, total)
	if err != nil {
		return nil, err
	}
	b.s.rec.VolatileCounter("specchard_columnar_batches_total").Add(1)
	return preds, nil
}
