package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specchar/internal/dataset"
	"specchar/internal/mtree"
	"specchar/internal/obs"
	"specchar/internal/registry"
)

// fixture bundles a server over a registry holding one trained model,
// plus the dataset it was trained on for equivalence checks.
type fixture struct {
	reg  *registry.Registry
	srv  *Server
	ts   *httptest.Server
	tree *mtree.CompiledTree
	data *dataset.Dataset
}

// trainedModel builds a deterministic compiled tree over a synthetic
// piecewise response; distinct seeds give trees with distinct
// predictions.
func trainedModel(t testing.TB, seed int64, n int) (*mtree.CompiledTree, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := &dataset.Schema{Response: "CPI", Attributes: []string{"l1d", "l2", "br", "tlb"}}
	d := dataset.New(schema)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y := float64(seed) + 3*x[0] - 2*x[1]
		if x[2] > 0.5 {
			y += 5 * x[3]
		}
		if err := d.Append(dataset.Sample{X: x, Y: y + 0.01*rng.NormFloat64(), Label: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	opts := mtree.DefaultOptions()
	opts.MinLeaf = 15
	tree, err := mtree.Build(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	tree, d := trainedModel(t, 7, 1200)
	reg := registry.New()
	if _, err := reg.Load("cpu2006", tree, "test"); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &fixture{reg: reg, srv: srv, ts: ts, tree: tree, data: d}
}

// score posts one request and decodes the response, returning the HTTP
// status and either the score body or the error body.
func (f *fixture) score(t testing.TB, model string, rows [][]float64) (int, scoreResponse, string) {
	t.Helper()
	body, err := json.Marshal(scoreRequest{Model: model, Samples: rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var sr scoreResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sr, ""
	}
	var er errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&er)
	return resp.StatusCode, scoreResponse{}, er.Error
}

func rowsOf(d *dataset.Dataset, lo, hi int) [][]float64 {
	out := make([][]float64, 0, hi-lo)
	for _, s := range d.Samples[lo:hi] {
		out = append(out, s.X)
	}
	return out
}

// Served scores must match the offline batch path bit-for-bit (well
// inside the 1e-9 acceptance tolerance): the daemon is a transport
// around PredictDataset, not a different scorer.
func TestServedScoresMatchPredictDataset(t *testing.T) {
	f := newFixture(t, Config{})
	want := f.tree.PredictDataset(f.data)
	for _, batch := range []int{1, 3, 16, 64, 200} {
		for lo := 0; lo < 400; lo += batch {
			hi := min(lo+batch, 400)
			status, sr, emsg := f.score(t, "cpu2006", rowsOf(f.data, lo, hi))
			if status != http.StatusOK {
				t.Fatalf("batch %d [%d:%d]: status %d (%s)", batch, lo, hi, status, emsg)
			}
			if len(sr.Predictions) != hi-lo {
				t.Fatalf("got %d predictions, want %d", len(sr.Predictions), hi-lo)
			}
			if sr.Model != "cpu2006" || sr.Version != 1 {
				t.Fatalf("response identity wrong: %+v", sr)
			}
			for i, got := range sr.Predictions {
				w := want[lo+i]
				scale := math.Max(1, math.Max(math.Abs(got), math.Abs(w)))
				if math.Abs(got-w) > 1e-9*scale {
					t.Fatalf("sample %d: served %v, PredictDataset %v", lo+i, got, w)
				}
			}
		}
	}
}

func TestScoreValidation(t *testing.T) {
	f := newFixture(t, Config{})
	post := func(body string) (int, string) {
		resp, err := http.Post(f.ts.URL+"/v1/score", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er.Error
	}
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"empty body":       {"", http.StatusBadRequest},
		"not json":         {"hi", http.StatusBadRequest},
		"no model":         {`{"samples":[[1,2,3,4]]}`, http.StatusBadRequest},
		"no samples":       {`{"model":"cpu2006"}`, http.StatusBadRequest},
		"unknown model":    {`{"model":"nope","samples":[[1,2,3,4]]}`, http.StatusNotFound},
		"width mismatch":   {`{"model":"cpu2006","samples":[[1,2]]}`, http.StatusBadRequest},
		"ragged samples":   {`{"model":"cpu2006","samples":[[1,2,3,4],[1]]}`, http.StatusBadRequest},
		"trailing garbage": {`{"model":"cpu2006","samples":[[1,2,3,4]]}{"x":1}`, http.StatusBadRequest},
	} {
		if got, msg := post(tc.body); got != tc.want {
			t.Errorf("%s: status %d (%s), want %d", name, got, msg, tc.want)
		}
	}
}

func TestAdminSurface(t *testing.T) {
	f := newFixture(t, Config{})
	get := func(path string) (int, string) {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	if status, body := get("/v1/models"); status != 200 ||
		!strings.Contains(body, `"name":"cpu2006"`) || !strings.Contains(body, `"version":1`) {
		t.Errorf("list: %d %s", status, body)
	}
	if status, body := get("/v1/models/cpu2006"); status != 200 || !strings.Contains(body, `"attrs":4`) {
		t.Errorf("get: %d %s", status, body)
	}
	if status, _ := get("/v1/models/none"); status != 404 {
		t.Errorf("get missing: %d, want 404", status)
	}
	if status, body := get("/healthz"); status != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthz: %d %s", status, body)
	}

	// Upload (hot-swap) a retrained artifact; version must advance.
	tree2, _ := trainedModel(t, 99, 800)
	var art bytes.Buffer
	if _, err := tree2.WriteTo(&art); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, f.ts.URL+"/v1/models/cpu2006", bytes.NewReader(art.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || info.Version != 2 || info.Source != "upload" {
		t.Errorf("put: %d %+v", resp.StatusCode, info)
	}

	// Corrupt artifact: rejected, registry untouched.
	req, _ = http.NewRequest(http.MethodPut, f.ts.URL+"/v1/models/cpu2006", strings.NewReader("not an artifact"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt put: %d, want 400", resp2.StatusCode)
	}
	if m, _ := f.reg.Get("cpu2006"); m.Version != 2 {
		t.Errorf("corrupt put changed registry to version %d", m.Version)
	}

	// Delete, then score → 404.
	req, _ = http.NewRequest(http.MethodDelete, f.ts.URL+"/v1/models/cpu2006", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Errorf("delete: %d", resp3.StatusCode)
	}
	if status, _, _ := f.score(t, "cpu2006", [][]float64{{1, 2, 3, 4}}); status != http.StatusNotFound {
		t.Errorf("score after delete: %d, want 404", status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t, Config{Recorder: obs.New()})
	if status, _, _ := f.score(t, "cpu2006", rowsOf(f.data, 0, 4)); status != 200 {
		t.Fatalf("score failed: %d", status)
	}
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	out := b.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"specchard_requests_total",
		"specchard_samples_scored_total 4",
		`specchar_stage_rows_total{stage="serve.batch"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// Admission control: with a tiny pending budget and a dispatcher that
// cannot keep up, excess requests are rejected with 429 immediately —
// and the budget is released afterwards so the model recovers.
func TestAdmissionControl(t *testing.T) {
	// MaxBatch far above MaxPending means the dispatcher lingers the full
	// BatchWait holding admitted samples, so concurrent 4-sample requests
	// pile pending past the budget of 8 and get shed, while each flush
	// releases the budget and lets later requests through.
	f := newFixture(t, Config{MaxPending: 8, MaxBatch: 1 << 20, BatchWait: 60 * time.Millisecond})
	var rejected, accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				status, _, _ := f.score(t, "cpu2006", rowsOf(f.data, 0, 4))
				switch status {
				case http.StatusOK:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("unexpected status %d", status)
				}
			}
		}()
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Error("no request was shed at 12×4 samples against a budget of 8")
	}
	if accepted.Load() == 0 {
		t.Error("every request was shed; admission is not releasing budget")
	}
	// Recovery: the full budget is back.
	if status, _, msg := f.score(t, "cpu2006", rowsOf(f.data, 0, 8)); status != http.StatusOK {
		t.Errorf("after the storm a full-budget request failed: %d (%s)", status, msg)
	}
}

// The acceptance criterion: hot-swapping the model under sustained
// concurrent scoring loses zero requests, every response carries a
// version that was actually published, and every prediction matches that
// version's offline scores exactly.
func TestHotSwapUnderConcurrentScoringZeroFailures(t *testing.T) {
	f := newFixture(t, Config{})
	const versions = 4
	trees := make([]*mtree.CompiledTree, versions+1)
	arts := make([][]byte, versions+1)
	trees[1] = f.tree
	for v := 2; v <= versions; v++ {
		tree, _ := trainedModel(t, int64(100*v), 800)
		trees[v] = tree
		var buf bytes.Buffer
		if _, err := tree.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		arts[v] = buf.Bytes()
	}
	// Per-version expected predictions for the probe block.
	probe := rowsOf(f.data, 0, 16)
	probeDS := &dataset.Dataset{Schema: f.data.Schema, Samples: f.data.Samples[0:16]}
	want := make([][]float64, versions+1)
	for v := 1; v <= versions; v++ {
		want[v] = trees[v].PredictDataset(probeDS)
	}

	var scored atomic.Int64
	errs := make(chan error, 64)
	var scorers sync.WaitGroup
	for g := 0; g < 8; g++ {
		scorers.Add(1)
		go func() {
			defer scorers.Done()
			for i := 0; i < 150; i++ {
				status, sr, emsg := f.score(t, "cpu2006", probe)
				if status != http.StatusOK {
					errs <- fmt.Errorf("request failed during swap: %d (%s)", status, emsg)
					return
				}
				if sr.Version < 1 {
					errs <- fmt.Errorf("response version %d never published", sr.Version)
					return
				}
				// Registry versions are monotonic; swap k (version k+1)
				// published tree 2+(k-1)%(versions-1), version 1 is the
				// original.
				treeIdx := 1
				if sr.Version > 1 {
					treeIdx = 2 + (sr.Version-2)%(versions-1)
				}
				for j, got := range sr.Predictions {
					if got != want[treeIdx][j] {
						errs <- fmt.Errorf("version %d (tree %d) sample %d: served %v, offline %v",
							sr.Version, treeIdx, j, got, want[treeIdx][j])
						return
					}
				}
				scored.Add(1)
			}
		}()
	}
	// Swap continuously (2→3→4→2→…) while the scorers run.
	done := make(chan struct{})
	go func() { scorers.Wait(); close(done) }()
	swaps := 0
	for {
		select {
		case <-done:
		default:
			v := 2 + swaps%(versions-1)
			req, _ := http.NewRequest(http.MethodPut, f.ts.URL+"/v1/models/cpu2006", bytes.NewReader(arts[v]))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("swap %d failed: %d", swaps, resp.StatusCode)
			}
			swaps++
			continue
		}
		break
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if scored.Load() != 8*150 {
		t.Errorf("scored %d, want %d (zero failed requests)", scored.Load(), 8*150)
	}
	if swaps == 0 {
		t.Error("no swap happened during scoring")
	}
	t.Logf("%d scores across %d hot-swaps, zero failures", scored.Load(), swaps)
}

// Shutdown drains: requests admitted before Close are scored, requests
// after it are rejected with 503.
func TestDrainScoresAdmittedWork(t *testing.T) {
	tree, d := trainedModel(t, 7, 1200)
	reg := registry.New()
	if _, err := reg.Load("m", tree, "test"); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Registry: reg, BatchWait: 30 * time.Millisecond, MaxBatch: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.batcherFor("m")
	if err != nil {
		t.Fatal(err)
	}
	// Park a job in the queue: with a huge MaxBatch and a long linger the
	// dispatcher is still gathering when Close lands, so the drain path
	// must finish the batch.
	type result struct {
		out []float64
		err error
	}
	results := make(chan result, 4)
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			out, _, err := b.submit(context.Background(), rowsOf(d, i*4, i*4+4))
			results <- result{out, err}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the submissions queue
	srv.Close()
	for i := 0; i < 4; i++ {
		r := <-results
		if r.err != nil {
			t.Errorf("admitted request failed during drain: %v", r.err)
		} else if len(r.out) != 4 {
			t.Errorf("admitted request returned %d predictions, want 4", len(r.out))
		}
	}
	// After Close: new work is refused.
	if _, err := srv.batcherFor("m"); err == nil {
		t.Error("batcherFor after Close should refuse")
	}
	if _, _, err := b.submit(context.Background(), rowsOf(d, 0, 1)); err == nil {
		t.Error("submit after Close should refuse")
	}
}
