// Package serve is the HTTP layer of the scoring daemon: a JSON score
// API over the model registry, with per-model request batching, bounded
// admission queues, and the operational surface a long-lived process
// needs (/healthz, /metrics, model load/swap/list).
//
// The request path is: handler validates the request against the current
// model (name resolves, sample widths match), then submits the sample
// block to the model's batcher. The batcher owns a bounded queue:
// admission is by queued sample count (an overloaded model rejects
// instantly with 429 instead of building an unbounded backlog), and a
// dispatcher goroutine coalesces queued requests into one batch — up to
// MaxBatch samples, lingering at most BatchWait for stragglers — scored
// through one CompiledTree.PredictDataset call. Batching amortizes the
// per-call overhead across requests exactly like the offline pipeline
// amortizes it across rows.
//
// Requests carry deadlines: an explicit one via the client package's
// X-Deadline-Ms header, or the server-imposed Config.DefaultTimeout.
// The deadline travels with the queued job — the batcher flushes early
// rather than linger a nearly-expired batch, and sheds work that
// expired while queued before spending scoring time on it (408). A
// client that disconnects instead gets its result dropped: there is no
// one left to answer, so the handler logs and moves on.
//
// Models are resolved at flush time, not submit time, so a hot-swap
// through the registry (PUT /v1/models/{name}) takes effect on the next
// batch with zero failed requests: in-flight batches keep the tree they
// resolved, queued work scores on the new version. The compiled trees
// themselves are immutable (per-call worker bounds come from
// CompiledTree.WithWorkers views), so one tree serves any number of
// concurrent batches.
//
// See DESIGN.md §11 for the architecture and cmd/specchard for the
// daemon wrapping this package.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"specchar/internal/client"
	"specchar/internal/mtree"
	"specchar/internal/obs"
	"specchar/internal/registry"
)

// Config parameterizes a Server. The zero value of every knob means
// "use the default" noted on the field.
type Config struct {
	// Registry is the model store; required.
	Registry *registry.Registry

	// Recorder receives spans and metrics; nil disables observability
	// (the /metrics endpoint then serves an empty body).
	Recorder *obs.Recorder

	// MaxBatch is the most samples one scoring batch may hold
	// (default 64).
	MaxBatch int

	// BatchWait is how long a dispatcher lingers for more requests once
	// it holds a partial batch (default 2ms). Zero means the default;
	// use Server-side batching off by setting MaxBatch to 1.
	BatchWait time.Duration

	// MaxPending caps queued samples per model — the admission bound.
	// Requests beyond it are rejected with 429 (default 4096).
	MaxPending int

	// Workers bounds the goroutines of one batch scoring call
	// (default 1: serving parallelism comes from concurrent batches, and
	// batches of MaxBatch samples are below the pool's parallel
	// threshold anyway).
	Workers int

	// ColumnarMin is the coalesced batch size (total samples across the
	// flushed jobs) at or above which the batcher scores through the
	// fused-columnar route: rows are packed into one contiguous
	// column-major slab and scored with PredictColumnsCheckedContext
	// instead of scattering the kernel across per-request row
	// allocations. Fused-columnar predictions are bit-identical to the
	// row path, so the swap is invisible to clients. Default 256;
	// negative disables the route entirely.
	ColumnarMin int

	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64

	// DefaultTimeout bounds scoring requests that carry no explicit
	// deadline header. Zero means no server-imposed deadline.
	DefaultTimeout time.Duration

	// RetryAfter is the backoff hint stamped on 429/503 responses
	// (default 1s). Resilient clients honor it over their own jitter.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ColumnarMin == 0 {
		c.ColumnarMin = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the scoring service: handlers plus the per-model batchers.
// Create with New, expose with Handler, and Close after the HTTP server
// has shut down (Close drains queued work).
type Server struct {
	cfg   Config
	reg   *registry.Registry
	rec   *obs.Recorder
	start time.Time

	// baseCtx carries the recorder into batch scoring; canceled by Close
	// after the batchers have drained.
	baseCtx context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	batchers map[string]*batcher
	closed   bool
}

// New builds a Server over the registry in cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("serve: Config.Registry is required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(obs.WithRecorder(context.Background(), cfg.Recorder))
	return &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		rec:      cfg.Recorder,
		start:    time.Now(),
		baseCtx:  ctx,
		stop:     cancel,
		batchers: make(map[string]*batcher),
	}, nil
}

// Handler returns the route table. Safe to call once and share.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/score", s.handleScore)
	mux.HandleFunc("GET /v1/models", s.handleModelList)
	mux.HandleFunc("GET /v1/models/{name}", s.handleModelGet)
	mux.HandleFunc("PUT /v1/models/{name}", s.handleModelPut)
	mux.HandleFunc("DELETE /v1/models/{name}", s.handleModelDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Close drains every batcher (queued requests are scored, not dropped)
// and then releases the scoring context. Call after http.Server.Shutdown
// has returned, so no handler is still submitting.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	bs := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	for _, b := range bs {
		b.close()
	}
	s.stop()
}

// batcherFor returns (creating on first use) the model's batcher.
func (s *Server) batcherFor(model string) (*batcher, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrDraining
	}
	b := s.batchers[model]
	if b == nil {
		b = newBatcher(s, model)
		s.batchers[model] = b
	}
	return b, nil
}

// scoreRequest is the body of POST /v1/score.
type scoreRequest struct {
	// Model names the registry entry to score against.
	Model string `json:"model"`
	// Samples are predictor vectors, each exactly schema-width long.
	Samples [][]float64 `json:"samples"`
}

// scoreResponse is the success body of POST /v1/score.
type scoreResponse struct {
	Model string `json:"model"`
	// Version is the registry version that actually scored the batch —
	// under a hot-swap this may be newer than the version visible when
	// the request was admitted.
	Version     int       `json:"version"`
	Predictions []float64 `json:"predictions"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.count("specchard_requests_total")
	var req scoreRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	// The same strictness ReadJSON applies to artifacts: a request with
	// trailing bytes after the document is malformed, not sloppy.
	if tok, err := dec.Token(); err != io.EOF {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("trailing data after request body (token %v)", tok))
		return
	}
	if req.Model == "" {
		s.fail(w, http.StatusBadRequest, "missing model name")
		return
	}
	if len(req.Samples) == 0 {
		s.fail(w, http.StatusBadRequest, "no samples")
		return
	}
	m, ok := s.reg.Get(req.Model)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("model %q not loaded", req.Model))
		return
	}
	width := m.Tree.NumAttrs()
	for i, row := range req.Samples {
		if len(row) != width {
			s.fail(w, http.StatusBadRequest,
				fmt.Sprintf("sample %d has %d attributes, model %q expects %d", i, len(row), req.Model, width))
			return
		}
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()
	b, err := s.batcherFor(req.Model)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	out, version, err := b.submit(ctx, req.Samples)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	s.rec.Counter("specchard_samples_scored_total").Add(int64(len(req.Samples)))
	s.writeJSON(w, http.StatusOK, scoreResponse{Model: req.Model, Version: version, Predictions: out})
}

// requestContext derives the scoring context: an explicit client
// deadline from the X-Deadline-Ms header wins, otherwise the
// server-side default (if any) applies. The error is a client mistake
// (malformed header).
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	if h := r.Header.Get(client.DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("invalid %s header %q: want positive integer milliseconds", client.DeadlineHeader, h)
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		return ctx, cancel, nil
	}
	if s.cfg.DefaultTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
		return ctx, cancel, nil
	}
	return r.Context(), func() {}, nil
}

// modelInfo is one entry of the admin list surface.
type modelInfo struct {
	Name     string `json:"name"`
	Version  int    `json:"version"`
	Attrs    int    `json:"attrs"`
	Leaves   int    `json:"leaves"`
	Nodes    int    `json:"nodes"`
	Smoothed bool   `json:"smoothed"`
	Source   string `json:"source"`
	// SHA256 is the artifact digest for models backed by a durable state
	// dir; empty for in-memory loads.
	SHA256   string `json:"sha256,omitempty"`
	LoadedAt string `json:"loaded_at"`
}

func infoOf(m *registry.Model) modelInfo {
	return modelInfo{
		Name:     m.Name,
		Version:  m.Version,
		Attrs:    m.Tree.NumAttrs(),
		Leaves:   m.Tree.NumLeaves(),
		Nodes:    m.Tree.NumNodes(),
		Smoothed: m.Tree.Smoothed(),
		Source:   m.Source,
		SHA256:   m.SHA256,
		LoadedAt: m.LoadedAt.UTC().Format(time.RFC3339Nano),
	}
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	s.count("specchard_requests_total")
	models := s.reg.List()
	infos := make([]modelInfo, len(models))
	for i, m := range models {
		infos[i] = infoOf(m)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	s.count("specchard_requests_total")
	m, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("model %q not loaded", r.PathValue("name")))
		return
	}
	s.writeJSON(w, http.StatusOK, infoOf(m))
}

// handleModelPut loads (or hot-swaps) a model from a compiled-tree
// artifact in the request body. The swap is atomic: scoring never sees a
// partial model, and in-flight batches finish on the version they
// resolved.
func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	s.count("specchard_requests_total")
	name := r.PathValue("name")
	tree, err := mtree.ReadCompiled(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		if !errors.Is(err, mtree.ErrArtifact) {
			status = http.StatusInternalServerError
		}
		s.fail(w, status, fmt.Sprintf("loading artifact: %v", err))
		return
	}
	m, err := s.reg.Load(name, tree, "upload")
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	s.count("specchard_model_swaps_total")
	s.writeJSON(w, http.StatusOK, infoOf(m))
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	s.count("specchard_requests_total")
	name := r.PathValue("name")
	ok, err := s.reg.Remove(name)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Sprintf("removing %q: %v", name, err))
		return
	}
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Sprintf("model %q not loaded", name))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"models":         s.reg.Len(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.rec.WritePrometheus(w); err != nil {
		// Headers are gone; nothing to do but note it.
		s.count("specchard_request_errors_total")
	}
}

// count bumps a volatile counter (request counts are load-dependent, so
// they stay out of deterministic manifests). Nil-safe via the recorder.
func (s *Server) count(name string) { s.rec.VolatileCounter(name).Add(1) }

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.count("specchard_request_errors_total")
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, msg string) {
	s.count("specchard_request_errors_total")
	s.writeJSON(w, status, errorResponse{Error: msg})
}

// failErr maps submission errors to statuses: admission rejection is
// 429 and draining is 503 — both stamped with a Retry-After hint — a
// model unloaded or swapped incompatibly mid-flight is 409, and a
// missed deadline is 408. A canceled request context means the client
// disconnected: nobody is listening, so writing a status would only
// mislabel the outcome in logs — count it and drop the response
// instead. (Cancellation with the client still connected can only come
// from server-side plumbing; that is a 503, retry-worthy.)
func (s *Server) failErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.retryAfter(w)
		s.fail(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		s.retryAfter(w)
		s.fail(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrModelGone):
		s.fail(w, http.StatusConflict, err.Error())
	case errors.Is(err, mtree.ErrSampleWidth):
		s.fail(w, http.StatusConflict, fmt.Sprintf("model swapped to an incompatible schema mid-request: %v", err))
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusRequestTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			s.count("specchard_client_gone_total")
			return
		}
		s.retryAfter(w)
		s.fail(w, http.StatusServiceUnavailable, err.Error())
	default:
		s.fail(w, http.StatusInternalServerError, err.Error())
	}
}

// retryAfter stamps the configured backoff hint, rounded up to whole
// seconds as the header requires.
func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter+time.Second-1) / int(time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
