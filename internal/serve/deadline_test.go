package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"specchar/internal/client"
	"specchar/internal/obs"
)

// scoreWithHeader posts one score request with extra headers, returning
// status and the decoded bodies.
func (f *fixture) scoreWithHeader(t testing.TB, model string, rows [][]float64, hdr map[string]string) (int, scoreResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(scoreRequest{Model: model, Samples: rows})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/v1/score", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr scoreResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sr, resp
}

// Flush sheds work whose deadline passed while it sat in the queue: the
// expired job fails with DeadlineExceeded without being scored, jobs
// still inside their budget score normally, and the shed is counted.
func TestFlushShedsExpiredWork(t *testing.T) {
	rec := obs.New()
	f := newFixture(t, Config{Recorder: rec})
	b, err := f.srv.batcherFor("cpu2006")
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsOf(f.data, 0, 2)
	expired := &scoreJob{rows: rows, deadline: time.Now().Add(-time.Second), done: make(chan struct{})}
	live := &scoreJob{rows: rows, done: make(chan struct{})}
	b.pending.Add(int64(len(rows) * 2)) // flush releases what submit admitted
	b.flush([]*scoreJob{expired, live})

	if !errors.Is(expired.err, context.DeadlineExceeded) {
		t.Errorf("expired job err = %v, want DeadlineExceeded", expired.err)
	}
	if expired.out != nil {
		t.Error("expired job was scored anyway")
	}
	if live.err != nil {
		t.Fatalf("live job failed: %v", live.err)
	}
	want := f.tree.Predict(rows[0])
	if live.out[0] != want {
		t.Errorf("live job scored %v, want %v", live.out[0], want)
	}
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("specchard_deadline_rejected_total 1")) {
		t.Errorf("shed not counted:\n%s", buf.String())
	}
}

// A request whose X-Deadline-Ms budget cannot be met answers 408: the
// one-sample batch cannot fill MaxBatch, so it waits for the linger
// window, which the deadline bounds — by the time it flushes the work
// is expired.
func TestDeadlineHeaderMissedBudgetIs408(t *testing.T) {
	f := newFixture(t, Config{BatchWait: 250 * time.Millisecond})
	status, _, _ := f.scoreWithHeader(t, "cpu2006", rowsOf(f.data, 0, 1), map[string]string{client.DeadlineHeader: "1"})
	if status != http.StatusRequestTimeout {
		t.Errorf("1ms deadline got status %d, want 408", status)
	}
	// A request with room to spare scores fine through the same path.
	status, sr, _ := f.scoreWithHeader(t, "cpu2006", rowsOf(f.data, 0, 1), map[string]string{client.DeadlineHeader: "30000"})
	if status != http.StatusOK || len(sr.Predictions) != 1 {
		t.Errorf("30s deadline got status %d, want 200", status)
	}
}

func TestDeadlineHeaderMalformedIs400(t *testing.T) {
	f := newFixture(t, Config{})
	for _, h := range []string{"abc", "-5", "0", "1.5"} {
		status, _, _ := f.scoreWithHeader(t, "cpu2006", rowsOf(f.data, 0, 1), map[string]string{client.DeadlineHeader: h})
		if status != http.StatusBadRequest {
			t.Errorf("header %q got status %d, want 400", h, status)
		}
	}
}

// The batcher's linger window is bounded by the earliest deadline in
// the batch, not just BatchWait: a batch holding a nearly-expired
// request flushes when that deadline hits, so work queued behind it is
// answered in milliseconds even when BatchWait is essentially forever.
func TestEarliestDeadlineBoundsLinger(t *testing.T) {
	f := newFixture(t, Config{BatchWait: 10 * time.Second, MaxBatch: 64})

	aDone := make(chan int, 1)
	go func() {
		status, _, _ := f.scoreWithHeader(t, "cpu2006", rowsOf(f.data, 0, 1), map[string]string{client.DeadlineHeader: "500"})
		aDone <- status
	}()
	time.Sleep(50 * time.Millisecond) // let A start its linger
	begin := time.Now()
	status, sr, _ := f.scoreWithHeader(t, "cpu2006", rowsOf(f.data, 1, 2), nil)
	elapsed := time.Since(begin)
	if status != http.StatusOK || len(sr.Predictions) != 1 {
		t.Fatalf("deadline-free request got status %d, want 200", status)
	}
	if want := f.tree.Predict(f.data.Samples[1].X); sr.Predictions[0] != want {
		t.Errorf("prediction %v, want %v", sr.Predictions[0], want)
	}
	// Without the deadline bound this waits the full 10s BatchWait.
	if elapsed > 5*time.Second {
		t.Errorf("request behind a 500ms-deadline job took %v; linger ignores batch deadlines", elapsed)
	}
	if got := <-aDone; got != http.StatusRequestTimeout {
		t.Errorf("the 500ms-deadline request got status %d, want 408", got)
	}
}

// DefaultTimeout applies the server-side budget when the client sends
// no header: a request that cannot flush before it answers 408.
func TestDefaultTimeoutAppliesWithoutHeader(t *testing.T) {
	f := newFixture(t, Config{BatchWait: 10 * time.Second, DefaultTimeout: 100 * time.Millisecond})
	begin := time.Now()
	status, _, _ := f.score(t, "cpu2006", rowsOf(f.data, 0, 1))
	if status != http.StatusRequestTimeout {
		t.Errorf("status %d, want 408 from DefaultTimeout", status)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Errorf("default-timeout rejection took %v; deadline not propagated", elapsed)
	}
}

// 429 and 503 carry a Retry-After hint so resilient clients back off at
// the server's cadence instead of guessing.
func TestRetryAfterStampedOnShedding(t *testing.T) {
	f := newFixture(t, Config{RetryAfter: 3 * time.Second})
	for name, err := range map[string]error{"overloaded": ErrOverloaded, "draining": ErrDraining} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/score", nil)
		f.srv.failErr(rec, req, err)
		wantStatus := http.StatusTooManyRequests
		if name == "draining" {
			wantStatus = http.StatusServiceUnavailable
		}
		if rec.Code != wantStatus {
			t.Errorf("%s: status %d, want %d", name, rec.Code, wantStatus)
		}
		if got := rec.Header().Get("Retry-After"); got != "3" {
			t.Errorf("%s: Retry-After = %q, want \"3\"", name, got)
		}
	}
	// Conflict-class failures carry no hint: retrying changes nothing.
	rec := httptest.NewRecorder()
	f.srv.failErr(rec, httptest.NewRequest(http.MethodPost, "/v1/score", nil), ErrModelGone)
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("409 carries Retry-After %q, want none", got)
	}
}

// A client that disconnected gets no response at all: the handler
// counts the abandonment and drops the write instead of mislabeling it
// as a server-side timeout.
func TestCanceledClientDropsResponse(t *testing.T) {
	rec := obs.New()
	f := newFixture(t, Config{Recorder: rec})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/score", nil).WithContext(ctx)
	f.srv.failErr(w, req, context.Canceled)
	if w.Body.Len() != 0 {
		t.Errorf("disconnected client still got a body: %q", w.Body.String())
	}
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("specchard_client_gone_total 1")) {
		t.Errorf("abandonment not counted:\n%s", buf.String())
	}

	// Cancellation with the client still connected is server-side
	// plumbing: answer 503 so the client retries elsewhere.
	w = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/score", nil)
	f.srv.failErr(w, req, context.Canceled)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("live-client cancellation got %d, want 503", w.Code)
	}
}
