package serve

import (
	"bytes"
	"math"
	"net/http"
	"strings"
	"testing"

	"specchar/internal/obs"
)

// TestColumnarRouteBitIdentical forces every batch through the
// fused-columnar route (ColumnarMin 1) and holds served predictions
// bitwise against per-sample Predict: the route swap must be
// unobservable in the outputs, not merely close.
func TestColumnarRouteBitIdentical(t *testing.T) {
	f := newFixture(t, Config{Recorder: obs.New(), ColumnarMin: 1})
	for _, batch := range []int{1, 7, 64, 300} {
		status, sr, emsg := f.score(t, "cpu2006", rowsOf(f.data, 0, batch))
		if status != http.StatusOK {
			t.Fatalf("batch %d: status %d (%s)", batch, status, emsg)
		}
		for i, got := range sr.Predictions {
			want := f.tree.Predict(f.data.Samples[i].X)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("batch %d sample %d: served %v, Predict %v", batch, i, got, want)
			}
		}
	}

	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	if !strings.Contains(b.String(), "specchard_columnar_batches_total 4") {
		t.Fatalf("columnar batch counter missing or wrong:\n%s", b.String())
	}
}

// TestColumnarThresholdGates pins the routing decision itself: batches
// below ColumnarMin take the row path (counter stays absent), batches
// at or above it take the columnar path, and a negative ColumnarMin
// disables the route no matter how wide the batch is.
func TestColumnarThresholdGates(t *testing.T) {
	countOf := func(f *fixture) string {
		resp, err := http.Get(f.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		for _, line := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(line, "specchard_columnar_batches_total") {
				return line
			}
		}
		return ""
	}

	f := newFixture(t, Config{Recorder: obs.New(), ColumnarMin: 100})
	if status, _, e := f.score(t, "cpu2006", rowsOf(f.data, 0, 99)); status != 200 {
		t.Fatalf("sub-threshold score failed: %d (%s)", status, e)
	}
	if line := countOf(f); line != "" {
		t.Fatalf("sub-threshold batch took the columnar route: %q", line)
	}
	if status, _, e := f.score(t, "cpu2006", rowsOf(f.data, 0, 100)); status != 200 {
		t.Fatalf("at-threshold score failed: %d (%s)", status, e)
	}
	if line := countOf(f); line != "specchard_columnar_batches_total 1" {
		t.Fatalf("at-threshold batch missed the columnar route: %q", line)
	}

	off := newFixture(t, Config{Recorder: obs.New(), ColumnarMin: -1})
	if status, _, e := off.score(t, "cpu2006", rowsOf(off.data, 0, 400)); status != 200 {
		t.Fatalf("disabled-route score failed: %d (%s)", status, e)
	}
	if line := countOf(off); line != "" {
		t.Fatalf("negative ColumnarMin still routed columnar: %q", line)
	}
}
