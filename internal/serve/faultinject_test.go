//go:build faultinject

package serve

import (
	"bytes"
	"net/http"
	"testing"

	"specchar/internal/faultinject"
	"specchar/internal/obs"
)

// A panic inside batch scoring is contained to the batch: the waiting
// requests answer 500, the panic is counted, and the daemon keeps
// serving — the very next request through the same batcher scores
// normally (DESIGN.md section 13).
func TestFlushPanicAnswers500AndDaemonSurvives(t *testing.T) {
	defer faultinject.Deactivate()
	rec := obs.New()
	f := newFixture(t, Config{Recorder: rec})
	rows := rowsOf(f.data, 0, 1)

	faultinject.Activate(1, faultinject.Fault{Site: "serve.batch.flush", OnCall: 1, Panic: "scorer blew up"})
	status, _, msg := f.score(t, "cpu2006", rows)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked batch got status %d (%q), want 500", status, msg)
	}

	// The batcher goroutine survived the panic: same model, same path.
	status, sr, msg := f.score(t, "cpu2006", rows)
	if status != http.StatusOK {
		t.Fatalf("request after contained panic got status %d (%q), want 200", status, msg)
	}
	if want := f.tree.Predict(rows[0]); sr.Predictions[0] != want {
		t.Errorf("post-panic prediction %v, want %v", sr.Predictions[0], want)
	}

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("specchard_batch_panics_total 1")) {
		t.Errorf("panic not counted:\n%s", buf.String())
	}
}

// An injected flush delay holds the response but nothing breaks: the
// request completes once the slow batch drains. This pins the site the
// chaos harness leans on for external-kill timing windows.
func TestFlushDelayCompletesLate(t *testing.T) {
	defer faultinject.Deactivate()
	f := newFixture(t, Config{})
	rows := rowsOf(f.data, 0, 1)

	faultinject.Activate(1, faultinject.Fault{Site: "serve.batch.flush", OnCall: 1, DelayMilli: 50})
	status, sr, msg := f.score(t, "cpu2006", rows)
	if status != http.StatusOK {
		t.Fatalf("delayed batch got status %d (%q), want 200", status, msg)
	}
	if want := f.tree.Predict(rows[0]); sr.Predictions[0] != want {
		t.Errorf("delayed prediction %v, want %v", sr.Predictions[0], want)
	}
}
