// Package baselines implements the comparison regressors of the paper's
// reference [15] (Ould-Ahmed-Vall et al., "On the comparison of regression
// algorithms for computer architecture performance analysis"), which found
// M5 model trees as accurate as artificial neural networks while remaining
// interpretable. Three baselines are provided:
//
//   - Linear: a single global least-squares model (the degenerate
//     one-leaf model tree);
//   - KNN: k-nearest-neighbour regression with standardized distances;
//   - MLP: a single-hidden-layer neural network trained by mini-batch
//     gradient descent.
//
// All satisfy the Regressor interface so the facade's model-comparison
// experiment can evaluate them uniformly against internal/mtree.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"specchar/internal/dataset"
	"specchar/internal/linreg"
)

// Regressor is a trained model over full-width attribute vectors.
type Regressor interface {
	// Predict returns the response estimate for one sample vector.
	Predict(x []float64) float64
	// Name identifies the algorithm for reports.
	Name() string
}

// ErrNoData is returned when training data is empty.
var ErrNoData = errors.New("baselines: empty training set")

// ---------------------------------------------------------------- linear

// Linear wraps a single global least-squares model.
type Linear struct {
	model *linreg.Model
}

// TrainLinear fits a simplified global linear model on the dataset.
func TrainLinear(d *dataset.Dataset) (*Linear, error) {
	if d.Len() == 0 {
		return nil, ErrNoData
	}
	terms := make([]int, d.Schema.NumAttrs())
	for i := range terms {
		terms[i] = i
	}
	m, err := linreg.Fit(d.Xs(), d.Ys(), terms)
	if err != nil {
		return nil, err
	}
	return &Linear{model: linreg.Simplify(m, d.Xs(), d.Ys())}, nil
}

// Predict implements Regressor.
func (l *Linear) Predict(x []float64) float64 { return l.model.Predict(x) }

// Name implements Regressor.
func (l *Linear) Name() string { return "global linear regression" }

// Model exposes the underlying equation for inspection.
func (l *Linear) Model() *linreg.Model { return l.model }

// ------------------------------------------------------------------- kNN

// KNN is a k-nearest-neighbour regressor over standardized attributes.
type KNN struct {
	k     int
	xs    [][]float64 // standardized training points
	ys    []float64
	mean  []float64
	scale []float64
}

// TrainKNN memorizes the dataset with per-attribute standardization.
func TrainKNN(d *dataset.Dataset, k int) (*KNN, error) {
	n := d.Len()
	if n == 0 {
		return nil, ErrNoData
	}
	if k < 1 {
		return nil, errors.New("baselines: k must be >= 1")
	}
	if k > n {
		k = n
	}
	dim := d.Schema.NumAttrs()
	m := &KNN{k: k, ys: d.Ys(), mean: make([]float64, dim), scale: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		col := d.Column(j)
		var sum float64
		for _, v := range col {
			sum += v
		}
		m.mean[j] = sum / float64(n)
		var ss float64
		for _, v := range col {
			dv := v - m.mean[j]
			ss += dv * dv
		}
		m.scale[j] = math.Sqrt(ss / float64(n))
		if m.scale[j] == 0 {
			m.scale[j] = 1
		}
	}
	m.xs = make([][]float64, n)
	for i, s := range d.Samples {
		m.xs[i] = m.standardize(s.X)
	}
	return m, nil
}

func (m *KNN) standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - m.mean[j]) / m.scale[j]
	}
	return out
}

// Predict implements Regressor: the mean response of the k nearest
// training points (Euclidean distance in standardized space).
func (m *KNN) Predict(x []float64) float64 {
	z := m.standardize(x)
	type cand struct {
		d float64
		y float64
	}
	// Maintain the k best in a small slice (k is tiny; O(nk) is fine and
	// allocation-free in the loop).
	best := make([]cand, 0, m.k)
	worst := math.Inf(1)
	for i, p := range m.xs {
		var dist float64
		for j := range p {
			dd := p[j] - z[j]
			dist += dd * dd
			if dist >= worst && len(best) == m.k {
				break
			}
		}
		if len(best) < m.k {
			best = append(best, cand{dist, m.ys[i]})
			if len(best) == m.k {
				sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
				worst = best[m.k-1].d
			}
			continue
		}
		if dist < worst {
			// Insert in order, dropping the current worst.
			pos := sort.Search(m.k, func(a int) bool { return best[a].d > dist })
			copy(best[pos+1:], best[pos:m.k-1])
			best[pos] = cand{dist, m.ys[i]}
			worst = best[m.k-1].d
		}
	}
	var sum float64
	for _, c := range best {
		sum += c.y
	}
	return sum / float64(len(best))
}

// Name implements Regressor.
func (m *KNN) Name() string { return fmt.Sprintf("%d-nearest neighbours", m.k) }

// ------------------------------------------------------------------- MLP

// MLPConfig parameterizes network training.
type MLPConfig struct {
	Hidden    int     // hidden units; 0 defaults to 16
	Epochs    int     // passes over the data; 0 defaults to 200
	Batch     int     // mini-batch size; 0 defaults to 32
	LearnRate float64 // 0 defaults to 0.01
	Seed      uint64  // weight init / shuffling seed
}

// MLP is a single-hidden-layer (tanh) neural network for regression,
// trained by mini-batch gradient descent on standardized inputs and
// response.
type MLP struct {
	hidden int
	// w1 [hidden][dim+1] input->hidden weights (last column bias);
	// w2 [hidden+1] hidden->output weights (last element bias).
	w1 [][]float64
	w2 []float64

	meanX, scaleX []float64
	meanY, scaleY float64
}

// TrainMLP trains the network on the dataset.
func TrainMLP(d *dataset.Dataset, cfg MLPConfig) (*MLP, error) {
	n := d.Len()
	if n == 0 {
		return nil, ErrNoData
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	dim := d.Schema.NumAttrs()
	rng := dataset.NewRNG(cfg.Seed ^ 0x6D6C70)

	m := &MLP{hidden: cfg.Hidden, meanX: make([]float64, dim), scaleX: make([]float64, dim)}
	// Standardization of inputs and response.
	for j := 0; j < dim; j++ {
		col := d.Column(j)
		var sum float64
		for _, v := range col {
			sum += v
		}
		m.meanX[j] = sum / float64(n)
		var ss float64
		for _, v := range col {
			dv := v - m.meanX[j]
			ss += dv * dv
		}
		m.scaleX[j] = math.Sqrt(ss / float64(n))
		if m.scaleX[j] == 0 {
			m.scaleX[j] = 1
		}
	}
	ys := d.Ys()
	for _, y := range ys {
		m.meanY += y
	}
	m.meanY /= float64(n)
	var ssy float64
	for _, y := range ys {
		dy := y - m.meanY
		ssy += dy * dy
	}
	m.scaleY = math.Sqrt(ssy / float64(n))
	if m.scaleY == 0 {
		m.scaleY = 1
	}

	// Pre-standardize the training set.
	zx := make([][]float64, n)
	zy := make([]float64, n)
	for i, s := range d.Samples {
		row := make([]float64, dim)
		for j, v := range s.X {
			row[j] = (v - m.meanX[j]) / m.scaleX[j]
		}
		zx[i] = row
		zy[i] = (s.Y - m.meanY) / m.scaleY
	}

	// Xavier-ish init.
	lim1 := 1 / math.Sqrt(float64(dim))
	m.w1 = make([][]float64, cfg.Hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, dim+1)
		for j := range m.w1[h] {
			m.w1[h][j] = (rng.Float64()*2 - 1) * lim1
		}
	}
	lim2 := 1 / math.Sqrt(float64(cfg.Hidden))
	m.w2 = make([]float64, cfg.Hidden+1)
	for h := range m.w2 {
		m.w2[h] = (rng.Float64()*2 - 1) * lim2
	}

	hiddenOut := make([]float64, cfg.Hidden)
	gradW2 := make([]float64, cfg.Hidden+1)
	gradW1 := make([][]float64, cfg.Hidden)
	for h := range gradW1 {
		gradW1[h] = make([]float64, dim+1)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += cfg.Batch {
			end := start + cfg.Batch
			if end > n {
				end = n
			}
			for h := range gradW2 {
				gradW2[h] = 0
			}
			for h := range gradW1 {
				for j := range gradW1[h] {
					gradW1[h][j] = 0
				}
			}
			for _, pi := range perm[start:end] {
				x := zx[pi]
				// Forward.
				for h := 0; h < cfg.Hidden; h++ {
					s := m.w1[h][dim] // bias
					for j := 0; j < dim; j++ {
						s += m.w1[h][j] * x[j]
					}
					hiddenOut[h] = math.Tanh(s)
				}
				pred := m.w2[cfg.Hidden]
				for h := 0; h < cfg.Hidden; h++ {
					pred += m.w2[h] * hiddenOut[h]
				}
				// Backward (squared error).
				errOut := pred - zy[pi]
				for h := 0; h < cfg.Hidden; h++ {
					gradW2[h] += errOut * hiddenOut[h]
					dh := errOut * m.w2[h] * (1 - hiddenOut[h]*hiddenOut[h])
					for j := 0; j < dim; j++ {
						gradW1[h][j] += dh * x[j]
					}
					gradW1[h][dim] += dh
				}
				gradW2[cfg.Hidden] += errOut
			}
			scale := cfg.LearnRate / float64(end-start)
			for h := 0; h <= cfg.Hidden; h++ {
				m.w2[h] -= scale * gradW2[h]
			}
			for h := 0; h < cfg.Hidden; h++ {
				for j := 0; j <= dim; j++ {
					m.w1[h][j] -= scale * gradW1[h][j]
				}
			}
		}
	}
	return m, nil
}

// Predict implements Regressor.
func (m *MLP) Predict(x []float64) float64 {
	dim := len(m.meanX)
	pred := m.w2[m.hidden]
	for h := 0; h < m.hidden; h++ {
		s := m.w1[h][dim]
		for j := 0; j < dim && j < len(x); j++ {
			s += m.w1[h][j] * (x[j] - m.meanX[j]) / m.scaleX[j]
		}
		pred += m.w2[h] * math.Tanh(s)
	}
	return pred*m.scaleY + m.meanY
}

// Name implements Regressor.
func (m *MLP) Name() string {
	return fmt.Sprintf("MLP (%d hidden units)", m.hidden)
}

// ---------------------------------------------------------------- bagging

// Bagged is an ensemble of regressors trained on bootstrap resamples of
// the data, predictions averaged — the classic variance-reduction wrapper
// (Breiman's bagging) that the regression-comparison literature applies
// to model trees as well.
type Bagged struct {
	members []Regressor
	name    string
}

// TrainBagged builds an ensemble of n members: each is trained by train()
// on a bootstrap resample of d (drawn with replacement, deterministic for
// a fixed seed).
func TrainBagged(d *dataset.Dataset, n int, seed uint64,
	train func(resample *dataset.Dataset) (Regressor, error),
) (*Bagged, error) {
	if d.Len() == 0 {
		return nil, ErrNoData
	}
	if n < 1 {
		return nil, errors.New("baselines: ensemble size must be >= 1")
	}
	rng := dataset.NewRNG(seed ^ 0x6261676765640a)
	b := &Bagged{}
	for i := 0; i < n; i++ {
		resample := dataset.New(d.Schema)
		for j := 0; j < d.Len(); j++ {
			resample.Samples = append(resample.Samples, d.Samples[rng.Intn(d.Len())])
		}
		m, err := train(resample)
		if err != nil {
			return nil, fmt.Errorf("baselines: training ensemble member %d: %w", i, err)
		}
		b.members = append(b.members, m)
	}
	b.name = fmt.Sprintf("bagged ensemble (%d x %s)", n, b.members[0].Name())
	return b, nil
}

// Predict implements Regressor: the mean of the members' predictions.
func (b *Bagged) Predict(x []float64) float64 {
	var sum float64
	for _, m := range b.members {
		sum += m.Predict(x)
	}
	return sum / float64(len(b.members))
}

// Name implements Regressor.
func (b *Bagged) Name() string { return b.name }

// Size returns the number of ensemble members.
func (b *Bagged) Size() int { return len(b.members) }
