package baselines

import (
	"math"
	"testing"

	"specchar/internal/dataset"
)

func schema2() *dataset.Schema {
	return &dataset.Schema{Response: "y", Attributes: []string{"a", "b"}}
}

// linearData draws y = 2 + 3a - b + noise.
func linearData(n int, seed uint64, noise float64) *dataset.Dataset {
	d := dataset.New(schema2())
	r := dataset.NewRNG(seed)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		y := 2 + 3*a - b + (r.Float64()-0.5)*noise
		_ = d.Append(dataset.Sample{X: []float64{a, b}, Y: y, Label: "lin"})
	}
	return d
}

// piecewiseData has a regime switch at a = 0.5, which a global linear
// model cannot capture.
func piecewiseData(n int, seed uint64) *dataset.Dataset {
	d := dataset.New(schema2())
	r := dataset.NewRNG(seed)
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		y := 1 + b
		if a > 0.5 {
			y = 8 - 2*b
		}
		y += (r.Float64() - 0.5) * 0.05
		_ = d.Append(dataset.Sample{X: []float64{a, b}, Y: y, Label: "pw"})
	}
	return d
}

func mae(m Regressor, d *dataset.Dataset) float64 {
	var s float64
	for _, smp := range d.Samples {
		s += math.Abs(m.Predict(smp.X) - smp.Y)
	}
	return s / float64(d.Len())
}

func TestLinearOnLinearData(t *testing.T) {
	train := linearData(500, 1, 0.02)
	test := linearData(200, 2, 0.02)
	m, err := TrainLinear(train)
	if err != nil {
		t.Fatal(err)
	}
	if got := mae(m, test); got > 0.02 {
		t.Errorf("linear MAE on linear data = %v", got)
	}
	if m.Name() == "" || m.Model() == nil {
		t.Error("metadata missing")
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := TrainLinear(dataset.New(schema2())); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
}

func TestKNNRecoversLocalStructure(t *testing.T) {
	train := piecewiseData(1500, 3)
	test := piecewiseData(300, 4)
	knn, err := TrainKNN(train, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := mae(knn, test); got > 0.25 {
		t.Errorf("kNN MAE on piecewise data = %v", got)
	}
	// A global linear model must be far worse here.
	lin, _ := TrainLinear(train)
	if mae(lin, test) < 2*mae(knn, test) {
		t.Errorf("linear (%v) unexpectedly rivals kNN (%v) on piecewise data",
			mae(lin, test), mae(knn, test))
	}
}

func TestKNNK1ReproducesTrainingPoints(t *testing.T) {
	train := linearData(100, 5, 0.1)
	knn, err := TrainKNN(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range train.Samples[:20] {
		if got := knn.Predict(smp.X); got != smp.Y {
			t.Fatalf("1-NN on a training point = %v, want %v", got, smp.Y)
		}
	}
}

func TestKNNValidation(t *testing.T) {
	if _, err := TrainKNN(dataset.New(schema2()), 3); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
	if _, err := TrainKNN(linearData(10, 6, 0), 0); err == nil {
		t.Error("k=0 should error")
	}
	// k > n clamps.
	knn, err := TrainKNN(linearData(5, 7, 0), 50)
	if err != nil {
		t.Fatal(err)
	}
	if knn.k != 5 {
		t.Errorf("k not clamped: %d", knn.k)
	}
}

func TestKNNName(t *testing.T) {
	knn, _ := TrainKNN(linearData(20, 8, 0), 3)
	if knn.Name() != "3-nearest neighbours" {
		t.Errorf("Name = %q", knn.Name())
	}
}

func TestMLPLearnsLinear(t *testing.T) {
	train := linearData(800, 9, 0.02)
	test := linearData(200, 10, 0.02)
	mlp, err := TrainMLP(train, MLPConfig{Hidden: 8, Epochs: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := mae(mlp, test); got > 0.15 {
		t.Errorf("MLP MAE on linear data = %v", got)
	}
}

func TestMLPLearnsPiecewise(t *testing.T) {
	train := piecewiseData(2000, 11)
	test := piecewiseData(300, 12)
	mlp, err := TrainMLP(train, MLPConfig{Hidden: 24, Epochs: 300, LearnRate: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mlpMAE := mae(mlp, test)
	lin, _ := TrainLinear(train)
	linMAE := mae(lin, test)
	if mlpMAE >= linMAE {
		t.Errorf("MLP (%v) not better than linear (%v) on piecewise data", mlpMAE, linMAE)
	}
}

func TestMLPDeterministic(t *testing.T) {
	train := linearData(200, 13, 0.1)
	m1, _ := TrainMLP(train, MLPConfig{Hidden: 4, Epochs: 20, Seed: 3})
	m2, _ := TrainMLP(train, MLPConfig{Hidden: 4, Epochs: 20, Seed: 3})
	probe := []float64{0.3, 0.7}
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Error("MLP training not deterministic")
	}
}

func TestMLPDefaultsAndErrors(t *testing.T) {
	if _, err := TrainMLP(dataset.New(schema2()), MLPConfig{}); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
	m, err := TrainMLP(linearData(50, 14, 0.1), MLPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.hidden != 16 {
		t.Errorf("default hidden = %d", m.hidden)
	}
	if m.Name() != "MLP (16 hidden units)" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestMLPConstantResponse(t *testing.T) {
	d := dataset.New(schema2())
	r := dataset.NewRNG(15)
	for i := 0; i < 60; i++ {
		_ = d.Append(dataset.Sample{X: []float64{r.Float64(), r.Float64()}, Y: 7})
	}
	m, err := TrainMLP(d, MLPConfig{Hidden: 4, Epochs: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5, 0.5}); math.Abs(got-7) > 0.2 {
		t.Errorf("constant-response prediction = %v, want ~7", got)
	}
}

func TestRegressorInterfaceCompliance(t *testing.T) {
	train := linearData(60, 16, 0.1)
	var models []Regressor
	if lin, err := TrainLinear(train); err == nil {
		models = append(models, lin)
	}
	if knn, err := TrainKNN(train, 3); err == nil {
		models = append(models, knn)
	}
	if mlp, err := TrainMLP(train, MLPConfig{Hidden: 4, Epochs: 10}); err == nil {
		models = append(models, mlp)
	}
	if len(models) != 3 {
		t.Fatalf("trained %d models", len(models))
	}
	for _, m := range models {
		if math.IsNaN(m.Predict([]float64{0.5, 0.5})) {
			t.Errorf("%s produced NaN", m.Name())
		}
	}
}

func TestBaggedReducesVariance(t *testing.T) {
	// Noisy piecewise data: a bagged ensemble of overfit 1-NN members
	// must beat a single 1-NN on held-out data.
	train := piecewiseData(800, 21)
	noisy := dataset.New(train.Schema)
	r := dataset.NewRNG(22)
	for _, s := range train.Samples {
		s2 := s
		s2.Y += r.Normal(0, 0.4)
		noisy.Samples = append(noisy.Samples, s2)
	}
	test := piecewiseData(400, 23)
	single, err := TrainKNN(noisy, 1)
	if err != nil {
		t.Fatal(err)
	}
	bag, err := TrainBagged(noisy, 15, 7, func(d *dataset.Dataset) (Regressor, error) {
		return TrainKNN(d, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bag.Size() != 15 {
		t.Errorf("Size = %d", bag.Size())
	}
	if mae(bag, test) >= mae(single, test) {
		t.Errorf("bagging did not help: bag %v vs single %v", mae(bag, test), mae(single, test))
	}
	if bag.Name() == "" {
		t.Error("empty name")
	}
}

func TestBaggedDeterministic(t *testing.T) {
	d := linearData(200, 24, 0.2)
	mk := func() *Bagged {
		b, err := TrainBagged(d, 5, 9, func(r *dataset.Dataset) (Regressor, error) {
			return TrainLinear(r)
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := mk(), mk()
	probe := []float64{0.4, 0.6}
	if b1.Predict(probe) != b2.Predict(probe) {
		t.Error("bagging not deterministic")
	}
}

func TestBaggedErrors(t *testing.T) {
	if _, err := TrainBagged(dataset.New(schema2()), 3, 1, nil); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
	d := linearData(20, 25, 0.1)
	if _, err := TrainBagged(d, 0, 1, nil); err == nil {
		t.Error("zero members should error")
	}
	if _, err := TrainBagged(d, 2, 1, func(*dataset.Dataset) (Regressor, error) {
		return nil, ErrNoData
	}); err == nil {
		t.Error("member training failure should propagate")
	}
}
