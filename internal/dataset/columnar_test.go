package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// colFixture builds a small dataset with repeating labels, negative
// zeros, and denormals — the bit patterns a binary round trip must
// preserve exactly.
func colFixture(t *testing.T) *Dataset {
	t.Helper()
	d := New(&Schema{Response: "CPI", Attributes: []string{"A", "B", "C"}})
	rows := []Sample{
		{X: []float64{0.5, -1.25, math.Copysign(0, -1)}, Y: 1.5, Label: "mcf"},
		{X: []float64{5e-324, 0, 3.75}, Y: -2.5, Label: "gcc"},
		{X: []float64{1e300, -1e-300, 42}, Y: 0.125, Label: "mcf"},
		{X: []float64{7, 8, 9}, Y: 3, Label: "lbm"},
	}
	for _, s := range rows {
		if err := d.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// sameDataset compares two datasets bitwise (schema, labels, X, Y).
func sameDataset(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.Len() != want.Len() || got.Schema.NumAttrs() != want.Schema.NumAttrs() ||
		got.Schema.Response != want.Schema.Response {
		t.Fatalf("shape changed: %d×%d %q vs %d×%d %q",
			want.Len(), want.Schema.NumAttrs(), want.Schema.Response,
			got.Len(), got.Schema.NumAttrs(), got.Schema.Response)
	}
	for j, a := range want.Schema.Attributes {
		if got.Schema.Attributes[j] != a {
			t.Fatalf("attribute %d: %q vs %q", j, a, got.Schema.Attributes[j])
		}
	}
	for i := range want.Samples {
		w, g := want.Samples[i], got.Samples[i]
		if g.Label != w.Label {
			t.Fatalf("sample %d label: %q vs %q", i, w.Label, g.Label)
		}
		if math.Float64bits(g.Y) != math.Float64bits(w.Y) {
			t.Fatalf("sample %d response bits differ: %v vs %v", i, w.Y, g.Y)
		}
		for j := range w.X {
			if math.Float64bits(g.X[j]) != math.Float64bits(w.X[j]) {
				t.Fatalf("sample %d attr %d bits differ: %v vs %v", i, j, w.X[j], g.X[j])
			}
		}
	}
}

func TestColumnarRoundTrip(t *testing.T) {
	d := colFixture(t)
	var buf bytes.Buffer
	if err := d.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := ReadColumnar(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Mapped() {
		t.Fatal("reader path must not claim a mapping")
	}
	sameDataset(t, d, c.Dataset())
	if c.Label(0) != "mcf" || c.Label(3) != "lbm" {
		t.Fatalf("labels decoded wrong: %q, %q", c.Label(0), c.Label(3))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestColumnarEmptyDataset(t *testing.T) {
	d := New(&Schema{Response: "CPI", Attributes: []string{"A"}})
	var buf bytes.Buffer
	if err := d.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := ReadColumnar(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || len(c.Columns()) != 1 {
		t.Fatalf("got %d samples, %d columns", c.Len(), len(c.Columns()))
	}
}

func TestToColumnarMatchesColumns(t *testing.T) {
	d := colFixture(t)
	c := d.ToColumnar()
	cols := d.Columns()
	for j := range cols {
		for i := range cols[j] {
			if math.Float64bits(c.Columns()[j][i]) != math.Float64bits(cols[j][i]) {
				t.Fatalf("col %d row %d differs", j, i)
			}
		}
	}
	sameDataset(t, d, c.Dataset())
}

func TestOpenColumnar(t *testing.T) {
	d := colFixture(t)
	path := filepath.Join(t.TempDir(), "fixture.spcol")
	var buf bytes.Buffer
	if err := d.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenColumnar(path)
	if err != nil {
		t.Fatal(err)
	}
	sameDataset(t, d, c.Dataset())
	mapped := c.Mapped()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	t.Logf("mapped=%v", mapped)

	if _, err := OpenColumnar(filepath.Join(t.TempDir(), "missing.spcol")); err == nil {
		t.Fatal("opened a missing file")
	}
}

// TestColumnarRejectsCorruption flips bits and truncates: every
// mutation of a valid artifact must be rejected — the CRC covers all
// payload bytes and the trailer check covers the CRC itself.
func TestColumnarRejectsCorruption(t *testing.T) {
	d := colFixture(t)
	var buf bytes.Buffer
	if err := d.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	art := buf.Bytes()

	for off := 0; off < len(art); off++ {
		bad := append([]byte(nil), art...)
		bad[off] ^= 0x40
		if _, err := ReadColumnar(bytes.NewReader(bad)); err == nil {
			t.Fatalf("accepted artifact with bit flipped at offset %d", off)
		}
	}
	for cut := 0; cut < len(art); cut += 7 {
		if _, err := ReadColumnar(bytes.NewReader(art[:cut])); err == nil {
			t.Fatalf("accepted artifact truncated to %d bytes", cut)
		}
	}
	if _, err := ReadColumnar(bytes.NewReader(append(append([]byte(nil), art...), 0))); err == nil {
		t.Fatal("accepted artifact with trailing bytes")
	}
	if _, err := ReadColumnar(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

// FuzzReadColumnar checks that arbitrary bytes never panic the reader,
// that the zero-copy and copying parses agree, and that anything
// accepted survives a write/read round trip bit for bit.
func FuzzReadColumnar(f *testing.F) {
	seed := func(d *Dataset) []byte {
		var buf bytes.Buffer
		if err := d.WriteColumnar(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	d := New(&Schema{Response: "CPI", Attributes: []string{"A", "B"}})
	d.Append(Sample{X: []float64{1, 2}, Y: 3, Label: "x"})
	d.Append(Sample{X: []float64{-1, math.Copysign(0, -1)}, Y: -3, Label: "y"})
	valid := seed(d)
	f.Add(valid)
	f.Add(seed(New(&Schema{Response: "Y", Attributes: []string{"only"}})))
	f.Add(valid[:len(valid)/2]) // truncated
	f.Add(valid[:11])           // cut inside the header
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(columnarMagic))
	f.Fuzz(func(t *testing.T, input []byte) {
		c, err := ReadColumnar(bytes.NewReader(input))
		zc, zerr := parseColumnar(append([]byte(nil), input...), true)
		if (err == nil) != (zerr == nil) {
			t.Fatalf("zero-copy and copying parses disagree: %v vs %v", err, zerr)
		}
		if err != nil {
			return // rejection is fine; panics are not
		}
		if c.Len() != zc.Len() {
			t.Fatalf("parses disagree on length: %d vs %d", c.Len(), zc.Len())
		}
		for j := range c.Columns() {
			for i := range c.Columns()[j] {
				if math.Float64bits(c.Columns()[j][i]) != math.Float64bits(zc.Columns()[j][i]) {
					t.Fatalf("parses disagree at col %d row %d", j, i)
				}
			}
		}
		var buf bytes.Buffer
		if err := c.Dataset().WriteColumnar(&buf); err != nil {
			t.Fatalf("accepted columnar failed to serialize: %v", err)
		}
		c2, err := ReadColumnar(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		sameDataset(t, c.Dataset(), c2.Dataset())
	})
}
