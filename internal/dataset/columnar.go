package dataset

// Zero-parse columnar dataset artifacts.
//
// CSV and ARFF pay a strconv.ParseFloat per value on every load. A
// scoring pipeline that reads the same dataset repeatedly wants the
// inverse trade: parse once at conversion time, then load by mapping
// bytes. WriteColumnar serializes the dataset as a little-endian
// column-major binary whose float payload is the in-memory layout of
// Columns() — so a reader on a little-endian machine can hand slices of
// the file straight to the columnar scoring kernels with zero decoding.
//
//	offset  field
//	0       magic "SPCCCOL1" (8 bytes)
//	8       format version (u32 LE)
//	12      attribute count w (u32)
//	16      sample count n (u64)
//	24      schema: response string, w attribute strings (u32 len + bytes)
//	        label table: u32 count, strings (first-appearance order)
//	        label codes: n × u32 (index into the label table)
//	        zero padding to the next 64-byte file offset
//	pad     Y column: n × f64
//	        X columns: w × n × f64 (each attribute's column contiguous)
//	end-4   CRC-32 (IEEE) of every preceding byte
//
// Integers and float bit patterns are little-endian. The float payload
// is 64-byte aligned from the start of the file, so a page-aligned mmap
// of the file yields cache-line-aligned, 8-byte-aligned columns.
//
// The reader mirrors the compiled-tree artifact reader's guarantees
// (internal/mtree/artifact.go): checksum verified before anything else
// is trusted, every count cross-checked against the bytes actually
// present, label codes range-checked, non-finite values rejected (the
// same ErrNonFinite contract Append enforces at row ingest), and hard
// EOF — trailing bytes mean a torn write, not slack.
//
// OpenColumnar (columnar_mmap_linux.go) maps the file and reinterprets
// the payload in place when the platform allows it; ReadColumnar decodes
// from any io.Reader and is the portable and fuzzable path. Both return
// a Columnar, the column-major counterpart of Dataset.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"specchar/internal/faultinject"
)

// ErrColumnar tags every malformed columnar-artifact error, so callers
// can distinguish corruption from I/O failure with errors.Is.
var ErrColumnar = errors.New("dataset: invalid columnar artifact")

// columnarMagic identifies a columnar dataset artifact. The trailing
// '1' pins the file family; incompatible layouts bump columnarVersion.
const columnarMagic = "SPCCCOL1"

// columnarVersion is the current columnar format version.
const columnarVersion = 1

// columnarAlign is the file-offset alignment of the float payload: one
// cache line, which also guarantees the 8-byte alignment the zero-copy
// reinterpret needs.
const columnarAlign = 64

// Columnar is a column-major dataset: the payload of a columnar
// artifact, or any dataset flipped into scoring orientation. Columns
// may alias a read-only file mapping (see Mapped), in which case they
// are invalid after Close and must not be written through.
type Columnar struct {
	Schema *Schema
	n      int
	y      []float64
	cols   [][]float64 // cols[j][i] = attribute j of sample i
	labels []string    // distinct labels, first-appearance order
	codes  []uint32    // per-sample index into labels

	// mapping holds the mmap'd file bytes when the columns alias a
	// mapping; Close unmaps it. Nil for heap-backed columnars.
	mapping []byte
}

// Len returns the number of samples.
func (c *Columnar) Len() int { return c.n }

// Ys returns the response column. It aliases the columnar storage.
func (c *Columnar) Ys() []float64 { return c.y }

// Columns returns the predictor columns, the shape PredictColumns
// consumes. The slices alias the columnar storage.
func (c *Columnar) Columns() [][]float64 { return c.cols }

// Label returns the label of sample i.
func (c *Columnar) Label(i int) string { return c.labels[c.codes[i]] }

// Mapped reports whether the columns alias a file mapping.
func (c *Columnar) Mapped() bool { return c.mapping != nil }

// Close releases the file mapping, if any. The columns are invalid
// afterwards. Safe on heap-backed columnars and safe to call twice.
func (c *Columnar) Close() error {
	m := c.mapping
	c.mapping = nil
	c.y, c.cols, c.codes = nil, nil, nil
	c.n = 0
	if m == nil {
		return nil
	}
	return unmapFile(m)
}

// Dataset materializes the row-major form: a full copy, independent of
// the columnar storage (and of any file mapping behind it).
func (c *Columnar) Dataset() *Dataset {
	d := New(c.Schema.Clone())
	w := len(c.cols)
	slab := make([]float64, c.n*w)
	d.Samples = make([]Sample, c.n)
	for i := 0; i < c.n; i++ {
		row := slab[i*w : (i+1)*w : (i+1)*w]
		for j := 0; j < w; j++ {
			row[j] = c.cols[j][i]
		}
		d.Samples[i] = Sample{X: row, Y: c.y[i], Label: c.labels[c.codes[i]]}
	}
	return d
}

// ToColumnar flips the dataset into a heap-backed Columnar without
// going through bytes: the same slab layout OpenColumnar maps.
func (d *Dataset) ToColumnar() *Columnar {
	c := &Columnar{
		Schema: d.Schema.Clone(),
		n:      d.Len(),
		y:      d.Ys(),
		cols:   d.Columns(),
	}
	codeOf := make(map[string]uint32)
	c.codes = make([]uint32, d.Len())
	for i, s := range d.Samples {
		code, ok := codeOf[s.Label]
		if !ok {
			code = uint32(len(c.labels))
			codeOf[s.Label] = code
			c.labels = append(c.labels, s.Label)
		}
		c.codes[i] = code
	}
	return c
}

// WriteColumnar serializes the dataset as a columnar artifact.
func (d *Dataset) WriteColumnar(w io.Writer) error {
	if d.Schema == nil {
		return fmt.Errorf("%w: dataset has no schema", ErrColumnar)
	}
	width, n := d.Schema.NumAttrs(), d.Len()
	buf := make([]byte, 0, 256+4*n+8*n*(width+1))
	buf = append(buf, columnarMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, columnarVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(width))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = appendColString(buf, d.Schema.Response)
	for _, a := range d.Schema.Attributes {
		buf = appendColString(buf, a)
	}
	cc := d.ToColumnar()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cc.labels)))
	for _, l := range cc.labels {
		buf = appendColString(buf, l)
	}
	for _, code := range cc.codes {
		buf = binary.LittleEndian.AppendUint32(buf, code)
	}
	for len(buf)%columnarAlign != 0 {
		buf = append(buf, 0)
	}
	for _, v := range cc.y {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, col := range cc.cols {
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

func appendColString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// ReadColumnar loads a columnar artifact from any reader: the portable
// path, decoding into heap-backed columns. Use OpenColumnar to map a
// file in place instead.
func ReadColumnar(r io.Reader) (*Columnar, error) {
	r = faultinject.WrapReader("dataset.ReadColumnar.reader", r)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading columnar artifact: %w", err)
	}
	return parseColumnar(data, false)
}

// hostLittleEndian reports whether float64 bit patterns in memory match
// the artifact's little-endian layout, which is what makes the
// zero-copy reinterpret legal.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// parseColumnar validates an artifact held in data and builds the
// Columnar over it. With zerocopy set (and a little-endian host, and
// 8-byte-aligned payload) the float columns alias data directly;
// otherwise they are decoded copies. Validation is identical either
// way.
func parseColumnar(data []byte, zerocopy bool) (*Columnar, error) {
	cr := &colReader{data: data}
	if string(cr.bytes(len(columnarMagic))) != columnarMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrColumnar)
	}
	if v := cr.u32(); cr.err == nil && v != columnarVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrColumnar, v)
	}
	width := int(cr.u32())
	n64 := cr.u64()
	if cr.err != nil {
		return nil, cr.err
	}
	if width <= 0 || width > len(data) {
		return nil, fmt.Errorf("%w: implausible attribute count %d", ErrColumnar, width)
	}
	// Each sample needs a 4-byte label code and (width+1) floats; bound
	// n by the bytes present before allocating anything n-sized.
	if n64 > uint64(len(data))/(4+8*uint64(width+1)) {
		return nil, fmt.Errorf("%w: implausible sample count %d", ErrColumnar, n64)
	}
	n := int(n64)
	schema := &Schema{Response: cr.str(), Attributes: make([]string, width)}
	for j := range schema.Attributes {
		schema.Attributes[j] = cr.str()
	}
	nlabels := int(cr.u32())
	if cr.err == nil && (nlabels < 0 || nlabels > len(data)) {
		return nil, fmt.Errorf("%w: implausible label count %d", ErrColumnar, nlabels)
	}
	if cr.err != nil {
		return nil, cr.err
	}
	labels := make([]string, nlabels)
	for i := range labels {
		labels[i] = cr.str()
	}
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = cr.u32()
	}
	if cr.err != nil {
		return nil, cr.err
	}
	for _, code := range codes {
		if int(code) >= nlabels {
			return nil, fmt.Errorf("%w: label code %d out of range (table has %d)", ErrColumnar, code, nlabels)
		}
	}
	if pad := (columnarAlign - cr.off%columnarAlign) % columnarAlign; pad > 0 {
		for _, b := range cr.bytes(pad) {
			if b != 0 {
				return nil, fmt.Errorf("%w: nonzero padding byte", ErrColumnar)
			}
		}
	}

	c := &Columnar{Schema: schema, n: n, labels: labels, codes: codes}
	c.y = cr.f64s(n, zerocopy)
	c.cols = make([][]float64, width)
	for j := range c.cols {
		c.cols[j] = cr.f64s(n, zerocopy)
	}

	// Checksum, then hard EOF: the CRC covers everything before it, and
	// nothing may follow it.
	payload := cr.off
	sum := cr.u32()
	if cr.err != nil {
		return nil, cr.err
	}
	if got := crc32.ChecksumIEEE(data[:payload]); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrColumnar, sum, got)
	}
	if cr.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after checksum", ErrColumnar, len(data)-cr.off)
	}
	// The same finiteness contract Append enforces row by row: NaN and
	// Inf silently corrupt induction and scoring, so they never ingest.
	for _, v := range c.y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: response is %v", ErrNonFinite, v)
		}
	}
	for j, col := range c.cols {
		for _, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: attribute %q is %v", ErrNonFinite, schema.Attributes[j], v)
			}
		}
	}
	return c, nil
}

// sliceAliases reports whether col's backing array lies inside m —
// how OpenColumnar learns whether the zero-copy reinterpret actually
// happened or the parse fell back to copies.
func sliceAliases(col []float64, m []byte) bool {
	if len(col) == 0 || len(m) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(&col[0]))
	lo := uintptr(unsafe.Pointer(&m[0]))
	return p >= lo && p < lo+uintptr(len(m))
}

// colReader is a bounds-checked little-endian cursor over the artifact
// bytes, with the same latched-error discipline as the compiled-tree
// artifactReader.
type colReader struct {
	data []byte
	off  int
	err  error
}

func (c *colReader) bytes(n int) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.data) || c.off+n < c.off {
		if c.err == nil {
			c.err = fmt.Errorf("%w: truncated (want %d bytes at offset %d of %d)", ErrColumnar, n, c.off, len(c.data))
		}
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *colReader) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *colReader) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *colReader) str() string {
	n := int(c.u32())
	if c.err == nil && n > len(c.data) {
		c.err = fmt.Errorf("%w: implausible string length %d", ErrColumnar, n)
		return ""
	}
	return string(c.bytes(n))
}

// f64s reads n float64s: a zero-copy reinterpret of the underlying
// bytes when allowed (zerocopy request, little-endian host, 8-byte
// aligned base — the writer's 64-byte payload alignment guarantees the
// latter for well-formed artifacts), a decoded copy otherwise.
func (c *colReader) f64s(n int, zerocopy bool) []float64 {
	if c.err == nil && (n < 0 || n > (len(c.data)-c.off)/8) {
		c.err = fmt.Errorf("%w: implausible array length %d", ErrColumnar, n)
	}
	if c.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	b := c.bytes(8 * n)
	if zerocopy && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
