//go:build linux

package dataset

import (
	"fmt"
	"os"
	"syscall"
)

// OpenColumnar maps a columnar artifact file read-only and builds the
// Columnar over the mapping: after the one-time validation pass (CRC,
// structure, finiteness) the float columns are reinterpreted views of
// the page cache — no decode, no copy. Close releases the mapping.
//
// If the payload cannot legally be viewed in place (big-endian host, a
// hand-built file with a misaligned payload) the columns silently fall
// back to decoded copies of the mapped bytes; the mapping is then
// released before returning, so Close stays trivial either way.
func OpenColumnar(path string) (*Columnar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("%w: empty file %s", ErrColumnar, path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("%w: file %s too large to map", ErrColumnar, path)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("dataset: mapping %s: %w", path, err)
	}
	c, err := parseColumnar(m, true)
	if err != nil {
		syscall.Munmap(m)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if c.n > 0 && len(c.cols) > 0 && sliceAliases(c.cols[0], m) {
		c.mapping = m
	} else {
		// Copy fallback: nothing references the mapping.
		syscall.Munmap(m)
	}
	return c, nil
}

func unmapFile(m []byte) error { return syscall.Munmap(m) }
