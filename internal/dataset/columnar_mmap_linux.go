//go:build linux

package dataset

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// OpenColumnar maps a columnar artifact file read-only and builds the
// Columnar over the mapping: after the one-time validation pass (CRC,
// structure, finiteness) the float columns are reinterpreted views of
// the page cache — no decode, no copy. Close releases the mapping.
//
// The mapping is advised MADV_SEQUENTIAL: both the validation pass and
// the scoring kernels walk the column slabs front to back, so the
// kernel may read ahead aggressively and drop pages behind the cursor.
// The advice is best-effort — a kernel that rejects it changes nothing
// about correctness.
//
// If the payload cannot legally be viewed in place (big-endian host, a
// hand-built file with a misaligned payload) the columns silently fall
// back to decoded copies of the mapped bytes; the mapping is then
// released before returning, so Close stays trivial either way. Unlike
// the happy path, errors releasing resources here are surfaced, not
// dropped: a failed Munmap leaks address space and a failed Close leaks
// a descriptor, and a caller scoring thousands of artifacts deserves to
// know.
func OpenColumnar(path string) (*Columnar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		f.Close()
		return nil, fmt.Errorf("%w: empty file %s", ErrColumnar, path)
	}
	if size != int64(int(size)) {
		f.Close()
		return nil, fmt.Errorf("%w: file %s too large to map", ErrColumnar, path)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: mapping %s: %w", path, err)
	}
	// The mapping survives the descriptor; keeping f open past this point
	// buys nothing, and its Close error is a real signal on some network
	// filesystems.
	if err := f.Close(); err != nil {
		if merr := syscall.Munmap(m); merr != nil {
			err = errors.Join(err, fmt.Errorf("dataset: unmapping %s: %w", path, merr))
		}
		return nil, fmt.Errorf("dataset: closing %s: %w", path, err)
	}
	_ = syscall.Madvise(m, syscall.MADV_SEQUENTIAL) // best-effort readahead hint

	c, err := parseColumnar(m, true)
	if err != nil {
		err = fmt.Errorf("%s: %w", path, err)
		if merr := syscall.Munmap(m); merr != nil {
			err = errors.Join(err, fmt.Errorf("dataset: unmapping %s: %w", path, merr))
		}
		return nil, err
	}
	if c.n > 0 && len(c.cols) > 0 && sliceAliases(c.cols[0], m) {
		c.mapping = m
	} else {
		// Copy fallback: nothing references the mapping.
		if merr := syscall.Munmap(m); merr != nil {
			return nil, fmt.Errorf("dataset: unmapping %s after copy fallback: %w", path, merr)
		}
	}
	return c, nil
}

func unmapFile(m []byte) error { return syscall.Munmap(m) }
