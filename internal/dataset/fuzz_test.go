package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV reader and
// that anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("label,A,CPI\nbench,0.5,1.5\n")
	f.Add("label,A,B,CPI\nx,1,2,3\ny,4,5,6\n")
	f.Add("")
	f.Add("label,CPI\n")
	f.Add("label,A,CPI\nbench,not-a-number,1\n")
	f.Add("label,A,CPI\n\"quoted,name\",1,2\n")
	f.Add("label,A,CPI\nbench,NaN,1\nbench,1,+Inf\n")
	f.Add("label,A,CPI\nbench,1")      // truncated mid-row
	f.Add("label,A,B,CPI\nx,1,2\ny,1") // mis-columned rows
	f.Fuzz(func(t *testing.T, input string) {
		// The quarantine policy must never panic either, and must agree
		// with fail-fast on clean input.
		qd, qrep, qerr := ReadCSVWith(strings.NewReader(input), ReadOptions{Policy: Quarantine})
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if qerr != nil {
			t.Fatalf("fail-fast accepted input the quarantine policy rejected: %v", qerr)
		}
		if qrep.Total != 0 || qd.Len() != d.Len() {
			t.Fatalf("policies disagree on clean input: quarantined %d, len %d vs %d",
				qrep.Total, qd.Len(), d.Len())
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		d2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if d2.Len() != d.Len() || d2.Schema.NumAttrs() != d.Schema.NumAttrs() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				d.Len(), d.Schema.NumAttrs(), d2.Len(), d2.Schema.NumAttrs())
		}
	})
}

// FuzzReadARFF checks the ARFF reader for panics and round-trip stability.
func FuzzReadARFF(f *testing.F) {
	f.Add("@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\nb,1,2\n")
	f.Add("% comment\n@relation x\n@attribute label string\n@attribute a numeric\n@attribute y numeric\n@data\n'q b',0,0\n")
	f.Add("@DATA\n")
	f.Add("")
	f.Add("@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUM") // truncated header
	f.Add("@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\nb,NaN,2\nb,1,Inf\n")
	f.Add("@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\nb,1\nb,1,2,3\n") // mis-columned rows
	f.Add("@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\nb,1,2")          // truncated last row
	f.Fuzz(func(t *testing.T, input string) {
		qd, qrep, qerr := ReadARFFWith(strings.NewReader(input), ReadOptions{Policy: Quarantine})
		d, err := ReadARFF(strings.NewReader(input))
		if err != nil {
			return
		}
		if qerr != nil {
			t.Fatalf("fail-fast accepted input the quarantine policy rejected: %v", qerr)
		}
		if qrep.Total != 0 || qd.Len() != d.Len() {
			t.Fatalf("policies disagree on clean input: quarantined %d, len %d vs %d",
				qrep.Total, qd.Len(), d.Len())
		}
		var buf bytes.Buffer
		if err := d.WriteARFF(&buf, "fuzz"); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		d2, err := ReadARFF(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if d2.Len() != d.Len() {
			t.Fatalf("round trip changed length: %d vs %d", d.Len(), d2.Len())
		}
	})
}
