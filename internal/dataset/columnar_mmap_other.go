//go:build !linux

package dataset

import "os"

// OpenColumnar on platforms without the mmap fast path reads the file
// and decodes it; the result is heap-backed and Close is a no-op.
func OpenColumnar(path string) (*Columnar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadColumnar(f)
}

func unmapFile(m []byte) error { return nil }
