package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the dataset as CSV: a header row of "label, <attrs...>,
// <response>" followed by one row per sample.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, d.Schema.Attributes...)
	header = append(header, d.Schema.Response)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, s := range d.Samples {
		row[0] = s.Label
		for j, v := range s.X {
			row[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[len(row)-1] = strconv.FormatFloat(s.Y, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. The final column is the
// response; the first is the label; everything between is a predictor.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("dataset: CSV needs at least label, one attribute, and a response; got %d columns", len(header))
	}
	if header[0] != "label" {
		return nil, fmt.Errorf("dataset: first CSV column must be %q, got %q", "label", header[0])
	}
	schema := &Schema{
		Response:   header[len(header)-1],
		Attributes: append([]string(nil), header[1:len(header)-1]...),
	}
	d := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		s := Sample{Label: rec[0], X: make([]float64, len(rec)-2)}
		for j := 1; j < len(rec)-1; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %d: %w", line, j+1, err)
			}
			s.X[j-1] = v
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d response: %w", line, err)
		}
		s.Y = y
		if err := d.Append(s); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return d, nil
}

// WriteARFF writes the dataset in WEKA's ARFF format, the interchange
// format of the package the paper used (M5' lives in WEKA). The label is
// emitted as a string attribute, predictors and the response as numeric.
func (d *Dataset) WriteARFF(w io.Writer, relation string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@RELATION %s\n\n", arffQuote(relation))
	fmt.Fprintf(bw, "@ATTRIBUTE label string\n")
	for _, a := range d.Schema.Attributes {
		fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", arffQuote(a))
	}
	fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n\n", arffQuote(d.Schema.Response))
	fmt.Fprintln(bw, "@DATA")
	for _, s := range d.Samples {
		fmt.Fprintf(bw, "%s", arffQuote(s.Label))
		for _, v := range s.X {
			fmt.Fprintf(bw, ",%s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintf(bw, ",%s\n", strconv.FormatFloat(s.Y, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadARFF parses the subset of ARFF emitted by WriteARFF: one string
// label attribute followed by numeric attributes, the last of which is the
// response. Comments (%) and blank lines are skipped; sparse ARFF is not
// supported.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var names []string
	var inData bool
	var d *Dataset
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(text)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				// Relation name is informational only.
			case strings.HasPrefix(lower, "@attribute"):
				fields := strings.Fields(text)
				if len(fields) < 3 {
					return nil, fmt.Errorf("dataset: ARFF line %d: malformed @ATTRIBUTE", line)
				}
				names = append(names, strings.Trim(fields[1], "'\""))
			case strings.HasPrefix(lower, "@data"):
				if len(names) < 3 {
					return nil, fmt.Errorf("dataset: ARFF needs label, one attribute, and a response; got %d attributes", len(names))
				}
				schema := &Schema{
					Response:   names[len(names)-1],
					Attributes: append([]string(nil), names[1:len(names)-1]...),
				}
				d = New(schema)
				inData = true
			default:
				return nil, fmt.Errorf("dataset: ARFF line %d: unrecognized directive %q", line, text)
			}
			continue
		}
		rec := strings.Split(text, ",")
		if len(rec) != len(names) {
			return nil, fmt.Errorf("dataset: ARFF line %d: %d fields, want %d", line, len(rec), len(names))
		}
		s := Sample{Label: strings.Trim(strings.TrimSpace(rec[0]), "'\""), X: make([]float64, len(rec)-2)}
		for j := 1; j < len(rec)-1; j++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: ARFF line %d field %d: %w", line, j+1, err)
			}
			s.X[j-1] = v
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(rec[len(rec)-1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: ARFF line %d response: %w", line, err)
		}
		s.Y = y
		if err := d.Append(s); err != nil {
			return nil, fmt.Errorf("dataset: ARFF line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("dataset: ARFF input has no @DATA section")
	}
	return d, nil
}

// arffQuote quotes a token if it contains characters that would break
// ARFF tokenization.
func arffQuote(s string) string {
	if strings.ContainsAny(s, " ,'\"{}%") {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}
