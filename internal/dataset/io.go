package dataset

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"specchar/internal/faultinject"
	"specchar/internal/obs"
)

// BadRowPolicy selects how the dataset readers treat rows that fail to
// parse or validate (malformed numbers, wrong field counts, non-finite
// values). Structural problems — a bad header, an unreadable stream — are
// always fatal regardless of policy.
type BadRowPolicy int

const (
	// FailFast aborts the read on the first bad row. This is the
	// behaviour of ReadCSV and ReadARFF.
	FailFast BadRowPolicy = iota
	// Quarantine sets bad rows aside and keeps reading: the read
	// succeeds with the surviving rows plus a report of what was
	// dropped and why.
	Quarantine
)

// ReadOptions configures ReadCSVWith and ReadARFFWith.
type ReadOptions struct {
	Policy BadRowPolicy
	Source string // name used in the quarantine report, e.g. a file path

	// Obs, when non-nil, records a "dataset.ingest" span per read (rows =
	// accepted samples) and counts quarantined rows on the
	// specchar_ingest_quarantined_rows_total counter. The readers take no
	// context, so the recorder rides in the options instead.
	Obs *obs.Recorder
}

// ingestSpan opens the ingest span for one read and returns the closer
// that stamps the outcome. Safe on a nil recorder.
func (o ReadOptions) ingestSpan(format string, rep *QuarantineReport) func() {
	_, span := o.Obs.StartSpan(nil, "dataset.ingest",
		obs.A("format", format), obs.A("source", o.Source))
	return func() {
		span.SetRows(rep.Accepted)
		if rep.Total > 0 {
			o.Obs.Counter("specchar_ingest_quarantined_rows_total").Add(int64(rep.Total))
			span.SetAttr("quarantined", rep.Total)
		}
		span.End()
	}
}

// maxQuarantineDetail bounds the per-row detail retained in a report;
// Total keeps counting past it so the caller still sees the full damage.
const maxQuarantineDetail = 64

// QuarantinedRow records one dropped row.
type QuarantinedRow struct {
	Line   int    // 1-based line number in the source
	Reason string // why the row was rejected
}

// QuarantineReport summarizes the rows a quarantining read dropped from
// one source.
type QuarantineReport struct {
	Source   string
	Accepted int              // rows that made it into the dataset
	Total    int              // rows quarantined
	Rows     []QuarantinedRow // detail for the first maxQuarantineDetail drops
}

func (r *QuarantineReport) add(line int, reason string) {
	r.Total++
	if len(r.Rows) < maxQuarantineDetail {
		r.Rows = append(r.Rows, QuarantinedRow{Line: line, Reason: reason})
	}
}

// String renders a one-line summary suitable for logs.
func (r *QuarantineReport) String() string {
	src := r.Source
	if src == "" {
		src = "<input>"
	}
	return fmt.Sprintf("%s: %d rows accepted, %d quarantined", src, r.Accepted, r.Total)
}

// WriteCSV writes the dataset as CSV: a header row of "label, <attrs...>,
// <response>" followed by one row per sample.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, d.Schema.Attributes...)
	header = append(header, d.Schema.Response)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, s := range d.Samples {
		row[0] = s.Label
		for j, v := range s.X {
			row[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[len(row)-1] = strconv.FormatFloat(s.Y, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV with the fail-fast policy.
// The final column is the response; the first is the label; everything
// between is a predictor.
func ReadCSV(r io.Reader) (*Dataset, error) {
	d, _, err := ReadCSVWith(r, ReadOptions{})
	return d, err
}

// ReadCSVWith parses CSV under the given bad-row policy. Under Quarantine
// the returned report describes every dropped row; under FailFast the
// report is nil on error and empty on success.
func ReadCSVWith(r io.Reader, opts ReadOptions) (*Dataset, *QuarantineReport, error) {
	r = faultinject.WrapReader("dataset.ReadCSV.reader", r)
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) < 3 {
		return nil, nil, fmt.Errorf("dataset: CSV needs at least label, one attribute, and a response; got %d columns", len(header))
	}
	if header[0] != "label" {
		return nil, nil, fmt.Errorf("dataset: first CSV column must be %q, got %q", "label", header[0])
	}
	schema := &Schema{
		Response:   header[len(header)-1],
		Attributes: append([]string(nil), header[1:len(header)-1]...),
	}
	d := New(schema)
	rep := &QuarantineReport{Source: opts.Source}
	defer opts.ingestSpan("csv", rep)()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A wrong field count is a row defect; anything else
			// (I/O failure, bare-quote corruption that desyncs the
			// parser) is structural and fatal under both policies.
			if opts.Policy == Quarantine && errors.Is(err, csv.ErrFieldCount) {
				rep.add(line, err.Error())
				continue
			}
			return nil, nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		s, err := parseCSVRow(rec)
		if err == nil {
			faultinject.CorruptRow("dataset.ReadCSV.row", s.X, &s.Y)
			err = d.Append(s)
		}
		if err != nil {
			if opts.Policy == Quarantine {
				rep.add(line, err.Error())
				continue
			}
			return nil, nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		rep.Accepted++
	}
	return d, rep, nil
}

// parseCSVRow converts one CSV record (label, predictors..., response)
// into a Sample.
func parseCSVRow(rec []string) (Sample, error) {
	s := Sample{Label: rec[0], X: make([]float64, len(rec)-2)}
	for j := 1; j < len(rec)-1; j++ {
		v, err := strconv.ParseFloat(rec[j], 64)
		if err != nil {
			return Sample{}, fmt.Errorf("column %d: %w", j+1, err)
		}
		s.X[j-1] = v
	}
	y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("response: %w", err)
	}
	s.Y = y
	return s, nil
}

// WriteARFF writes the dataset in WEKA's ARFF format, the interchange
// format of the package the paper used (M5' lives in WEKA). The label is
// emitted as a string attribute, predictors and the response as numeric.
func (d *Dataset) WriteARFF(w io.Writer, relation string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@RELATION %s\n\n", arffQuote(relation))
	fmt.Fprintf(bw, "@ATTRIBUTE label string\n")
	for _, a := range d.Schema.Attributes {
		fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", arffQuote(a))
	}
	fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n\n", arffQuote(d.Schema.Response))
	fmt.Fprintln(bw, "@DATA")
	for _, s := range d.Samples {
		fmt.Fprintf(bw, "%s", arffQuote(s.Label))
		for _, v := range s.X {
			fmt.Fprintf(bw, ",%s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintf(bw, ",%s\n", strconv.FormatFloat(s.Y, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadARFF parses the subset of ARFF emitted by WriteARFF with the
// fail-fast policy: one string label attribute followed by numeric
// attributes, the last of which is the response. Comments (%) and blank
// lines are skipped; sparse ARFF is not supported.
func ReadARFF(r io.Reader) (*Dataset, error) {
	d, _, err := ReadARFFWith(r, ReadOptions{})
	return d, err
}

// ReadARFFWith parses ARFF under the given bad-row policy. Header
// (@ATTRIBUTE/@DATA) problems are fatal under both policies; data rows
// that fail to parse or validate are quarantined when requested.
func ReadARFFWith(r io.Reader, opts ReadOptions) (*Dataset, *QuarantineReport, error) {
	r = faultinject.WrapReader("dataset.ReadARFF.reader", r)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var names []string
	var inData bool
	var d *Dataset
	rep := &QuarantineReport{Source: opts.Source}
	defer opts.ingestSpan("arff", rep)()
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(text)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				// Relation name is informational only.
			case strings.HasPrefix(lower, "@attribute"):
				fields := strings.Fields(text)
				if len(fields) < 3 {
					return nil, nil, fmt.Errorf("dataset: ARFF line %d: malformed @ATTRIBUTE", line)
				}
				names = append(names, strings.Trim(fields[1], "'\""))
			case strings.HasPrefix(lower, "@data"):
				if len(names) < 3 {
					return nil, nil, fmt.Errorf("dataset: ARFF needs label, one attribute, and a response; got %d attributes", len(names))
				}
				schema := &Schema{
					Response:   names[len(names)-1],
					Attributes: append([]string(nil), names[1:len(names)-1]...),
				}
				d = New(schema)
				inData = true
			default:
				return nil, nil, fmt.Errorf("dataset: ARFF line %d: unrecognized directive %q", line, text)
			}
			continue
		}
		s, err := parseARFFRow(text, len(names))
		if err == nil {
			faultinject.CorruptRow("dataset.ReadARFF.row", s.X, &s.Y)
			err = d.Append(s)
		}
		if err != nil {
			if opts.Policy == Quarantine {
				rep.add(line, err.Error())
				continue
			}
			return nil, nil, fmt.Errorf("dataset: ARFF line %d: %w", line, err)
		}
		rep.Accepted++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if d == nil {
		return nil, nil, fmt.Errorf("dataset: ARFF input has no @DATA section")
	}
	return d, rep, nil
}

// parseARFFRow converts one @DATA line into a Sample, enforcing the field
// count implied by the attribute declarations.
func parseARFFRow(text string, wantFields int) (Sample, error) {
	rec := strings.Split(text, ",")
	if len(rec) != wantFields {
		return Sample{}, fmt.Errorf("%d fields, want %d", len(rec), wantFields)
	}
	s := Sample{Label: strings.Trim(strings.TrimSpace(rec[0]), "'\""), X: make([]float64, len(rec)-2)}
	for j := 1; j < len(rec)-1; j++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
		if err != nil {
			return Sample{}, fmt.Errorf("field %d: %w", j+1, err)
		}
		s.X[j-1] = v
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(rec[len(rec)-1]), 64)
	if err != nil {
		return Sample{}, fmt.Errorf("response: %w", err)
	}
	s.Y = y
	return s, nil
}

// arffQuote quotes a token if it contains characters that would break
// ARFF tokenization.
func arffQuote(s string) string {
	if strings.ContainsAny(s, " ,'\"{}%") {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}
