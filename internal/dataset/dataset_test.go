package dataset

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return &Schema{Response: "CPI", Attributes: []string{"A", "B", "C"}}
}

func testDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	d := New(testSchema())
	r := NewRNG(1)
	labels := []string{"alpha", "beta", "gamma"}
	for i := 0; i < n; i++ {
		s := Sample{
			X:     []float64{r.Float64(), r.Float64(), r.Float64()},
			Y:     r.Float64() * 2,
			Label: labels[i%len(labels)],
		}
		if err := d.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestSchemaAttrIndex(t *testing.T) {
	s := testSchema()
	if s.AttrIndex("B") != 1 {
		t.Errorf("AttrIndex(B) = %d", s.AttrIndex("B"))
	}
	if s.AttrIndex("missing") != -1 {
		t.Errorf("AttrIndex(missing) = %d", s.AttrIndex("missing"))
	}
	if s.NumAttrs() != 3 {
		t.Errorf("NumAttrs = %d", s.NumAttrs())
	}
}

func TestSchemaClone(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Attributes[0] = "Z"
	if s.Attributes[0] != "A" {
		t.Error("Clone shares attribute slice")
	}
}

func TestAppendValidatesWidth(t *testing.T) {
	d := New(testSchema())
	if err := d.Append(Sample{X: []float64{1, 2}}); err == nil {
		t.Error("Append with wrong width should error")
	}
	if err := d.Append(Sample{X: []float64{1, 2, 3}}); err != nil {
		t.Errorf("Append = %v", err)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestAppendRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name string
		s    Sample
	}{
		{"NaN attr", Sample{X: []float64{1, math.NaN(), 3}, Y: 1}},
		{"+Inf attr", Sample{X: []float64{math.Inf(1), 2, 3}, Y: 1}},
		{"-Inf attr", Sample{X: []float64{1, 2, math.Inf(-1)}, Y: 1}},
		{"NaN response", Sample{X: []float64{1, 2, 3}, Y: math.NaN()}},
		{"Inf response", Sample{X: []float64{1, 2, 3}, Y: math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(testSchema())
			err := d.Append(tc.s)
			if err == nil {
				t.Fatal("Append accepted a non-finite sample")
			}
			if !errors.Is(err, ErrNonFinite) {
				t.Errorf("error %v is not ErrNonFinite", err)
			}
			if d.Len() != 0 {
				t.Errorf("rejected sample was stored; Len = %d", d.Len())
			}
		})
	}
}

func TestColumnsAndYs(t *testing.T) {
	d := New(testSchema())
	_ = d.Append(Sample{X: []float64{1, 2, 3}, Y: 10, Label: "a"})
	_ = d.Append(Sample{X: []float64{4, 5, 6}, Y: 20, Label: "b"})
	ys := d.Ys()
	if len(ys) != 2 || ys[0] != 10 || ys[1] != 20 {
		t.Errorf("Ys = %v", ys)
	}
	col := d.Column(1)
	if col[0] != 2 || col[1] != 5 {
		t.Errorf("Column(1) = %v", col)
	}
	xs := d.Xs()
	if len(xs) != 2 || xs[1][2] != 6 {
		t.Errorf("Xs = %v", xs)
	}
}

func TestLabelsAndFilter(t *testing.T) {
	d := testDataset(t, 9)
	labels := d.Labels()
	if len(labels) != 3 || labels[0] != "alpha" || labels[1] != "beta" || labels[2] != "gamma" {
		t.Errorf("Labels = %v", labels)
	}
	f := d.FilterLabel("beta")
	if f.Len() != 3 {
		t.Errorf("FilterLabel(beta).Len = %d, want 3", f.Len())
	}
	for _, s := range f.Samples {
		if s.Label != "beta" {
			t.Errorf("filtered sample has label %q", s.Label)
		}
	}
	if d.FilterLabel("nope").Len() != 0 {
		t.Error("FilterLabel of unknown label should be empty")
	}
}

func TestConcat(t *testing.T) {
	d1 := testDataset(t, 4)
	d2 := testDataset(t, 6)
	all, err := d1.Concat(d2)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 10 {
		t.Errorf("Concat len = %d", all.Len())
	}
	other := New(&Schema{Response: "y", Attributes: []string{"only"}})
	if _, err := d1.Concat(other); err == nil {
		t.Error("Concat with mismatched schema should error")
	}
}

func TestSplitFractions(t *testing.T) {
	d := testDataset(t, 1000)
	train, test := d.Split(NewRNG(7), 0.1)
	if train.Len() != 100 {
		t.Errorf("train len = %d, want 100", train.Len())
	}
	if test.Len() != 900 {
		t.Errorf("test len = %d, want 900", test.Len())
	}
	// Deterministic: same seed, same split.
	train2, _ := d.Split(NewRNG(7), 0.1)
	for i := range train.Samples {
		if train.Samples[i].Y != train2.Samples[i].Y {
			t.Fatal("Split not deterministic for equal seeds")
		}
	}
	// Different seed gives a different split (overwhelmingly likely).
	train3, _ := d.Split(NewRNG(8), 0.1)
	same := true
	for i := range train.Samples {
		if train.Samples[i].Y != train3.Samples[i].Y {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical splits")
	}
}

func TestSplitPartitionProperty(t *testing.T) {
	// Every sample appears exactly once across train+test.
	d := testDataset(t, 257)
	train, test := d.Split(NewRNG(3), 0.3)
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("partition sizes %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	var sum, sumParts float64
	for _, s := range d.Samples {
		sum += s.Y
	}
	for _, s := range train.Samples {
		sumParts += s.Y
	}
	for _, s := range test.Samples {
		sumParts += s.Y
	}
	if math.Abs(sum-sumParts) > 1e-9 {
		t.Errorf("partition lost samples: sum %v vs %v", sum, sumParts)
	}
}

func TestRandomSubset(t *testing.T) {
	d := testDataset(t, 50)
	sub := d.RandomSubset(NewRNG(11), 10)
	if sub.Len() != 10 {
		t.Errorf("subset len = %d", sub.Len())
	}
	// Oversized request returns everything.
	all := d.RandomSubset(NewRNG(11), 500)
	if all.Len() != 50 {
		t.Errorf("oversized subset len = %d", all.Len())
	}
}

func TestSummary(t *testing.T) {
	d := New(testSchema())
	_ = d.Append(Sample{X: []float64{0, 0, 0}, Y: 1})
	_ = d.Append(Sample{X: []float64{0, 0, 0}, Y: 3})
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 2 || s.N != 2 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	if a.Uint64() == c.Uint64() {
		t.Error("different seeds produced same value (suspicious)")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(7) value %d appeared %d/7000 times", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(77)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(123)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(6)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(3)
		if v < 0 {
			t.Fatalf("Exponential produced negative %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.1 {
		t.Errorf("Exponential mean = %v, want ~3", mean)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked RNGs produced identical first values")
	}
}

// Property: Perm always returns a permutation for any n and seed.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8) % 64
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedSplitPreservesComposition(t *testing.T) {
	d := testDataset(t, 900) // 300 of each label
	train, test := d.StratifiedSplit(NewRNG(5), 0.1)
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("partition sizes %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	// Every label contributes exactly its stratum share.
	for _, label := range d.Labels() {
		got := train.FilterLabel(label).Len()
		want := int(float64(d.FilterLabel(label).Len()) * 0.1)
		if got != want {
			t.Errorf("label %s train share = %d, want %d", label, got, want)
		}
	}
	// Deterministic.
	train2, _ := d.StratifiedSplit(NewRNG(5), 0.1)
	for i := range train.Samples {
		if train.Samples[i].Y != train2.Samples[i].Y {
			t.Fatal("stratified split not deterministic")
		}
	}
}

func TestStratifiedSplitSingleLabel(t *testing.T) {
	d := New(testSchema())
	r := NewRNG(2)
	for i := 0; i < 40; i++ {
		_ = d.Append(Sample{X: []float64{r.Float64(), 0, 0}, Y: r.Float64(), Label: "only"})
	}
	train, test := d.StratifiedSplit(NewRNG(1), 0.25)
	if train.Len() != 10 || test.Len() != 30 {
		t.Errorf("split = %d/%d, want 10/30", train.Len(), test.Len())
	}
}

func TestAttrSummaries(t *testing.T) {
	d := New(testSchema())
	_ = d.Append(Sample{X: []float64{1, 10, 100}, Y: 0})
	_ = d.Append(Sample{X: []float64{3, 30, 300}, Y: 0})
	sums, err := d.AttrSummaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if sums[0].Mean != 2 || sums[1].Mean != 20 || sums[2].Mean != 200 {
		t.Errorf("means = %v %v %v", sums[0].Mean, sums[1].Mean, sums[2].Mean)
	}
	if sums[1].Min != 10 || sums[1].Max != 30 {
		t.Errorf("min/max = %v/%v", sums[1].Min, sums[1].Max)
	}
	empty := New(testSchema())
	if _, err := empty.AttrSummaries(); err == nil {
		t.Error("empty dataset should error")
	}
}
