package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func roundTripDataset(t *testing.T) *Dataset {
	t.Helper()
	d := New(&Schema{Response: "CPI", Attributes: []string{"L1DMiss", "L2Miss"}})
	_ = d.Append(Sample{X: []float64{0.01, 0.001}, Y: 0.6, Label: "429.mcf"})
	_ = d.Append(Sample{X: []float64{0.02, 0.0005}, Y: 1.44, Label: "470.lbm"})
	_ = d.Append(Sample{X: []float64{0, 0}, Y: 0.25, Label: "444.namd"})
	return d
}

func TestCSVRoundTrip(t *testing.T) {
	d := roundTripDataset(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestARFFRoundTrip(t *testing.T) {
	d := roundTripDataset(t)
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "spec cpu2006"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "@RELATION") || !strings.Contains(text, "@DATA") {
		t.Fatalf("ARFF output missing directives:\n%s", text)
	}
	got, err := ReadARFF(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.Schema.Response != want.Schema.Response {
		t.Errorf("response = %q, want %q", got.Schema.Response, want.Schema.Response)
	}
	if got.Schema.NumAttrs() != want.Schema.NumAttrs() {
		t.Fatalf("attr count = %d, want %d", got.Schema.NumAttrs(), want.Schema.NumAttrs())
	}
	for i, a := range want.Schema.Attributes {
		if got.Schema.Attributes[i] != a {
			t.Errorf("attr[%d] = %q, want %q", i, got.Schema.Attributes[i], a)
		}
	}
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Samples {
		w, g := want.Samples[i], got.Samples[i]
		if g.Label != w.Label || g.Y != w.Y {
			t.Errorf("sample %d = (%q, %v), want (%q, %v)", i, g.Label, g.Y, w.Label, w.Y)
		}
		for j := range w.X {
			if g.X[j] != w.X[j] {
				t.Errorf("sample %d x[%d] = %v, want %v", i, j, g.X[j], w.X[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"too few columns", "label,CPI\na,1\n"},
		{"bad first column", "x,A,CPI\na,1,2\n"},
		{"non-numeric attr", "label,A,CPI\na,zzz,2\n"},
		{"non-numeric response", "label,A,CPI\na,1,zzz\n"},
		{"NaN attr", "label,A,CPI\na,NaN,2\n"},
		{"Inf attr", "label,A,CPI\na,+Inf,2\n"},
		{"NaN response", "label,A,CPI\na,1,NaN\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadARFFErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no data section", "@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n"},
		{"too few attributes", "@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE y NUMERIC\n@DATA\n"},
		{"bad directive", "@BOGUS\n"},
		{"malformed attribute", "@ATTRIBUTE onlyname\n"},
		{"wrong field count", "@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\nfoo,1\n"},
		{"bad number", "@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\nfoo,xx,1\n"},
		{"NaN value", "@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\nfoo,NaN,1\n"},
	}
	for _, c := range cases {
		if _, err := ReadARFF(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadCSVQuarantine(t *testing.T) {
	in := "label,A,CPI\n" +
		"good1,1,2\n" +
		"badnum,zzz,2\n" +
		"badnan,NaN,2\n" +
		"short,1\n" +
		"good2,3,4\n" +
		"badresp,1,+Inf\n"
	d, rep, err := ReadCSVWith(strings.NewReader(in), ReadOptions{Policy: Quarantine, Source: "corrupt.csv"})
	if err != nil {
		t.Fatalf("quarantine read failed: %v", err)
	}
	if d.Len() != 2 || d.Samples[0].Label != "good1" || d.Samples[1].Label != "good2" {
		t.Errorf("surviving samples = %+v", d.Samples)
	}
	if rep.Accepted != 2 || rep.Total != 4 {
		t.Errorf("report = %+v, want 2 accepted / 4 quarantined", rep)
	}
	if rep.Source != "corrupt.csv" || !strings.Contains(rep.String(), "corrupt.csv") {
		t.Errorf("report source = %q (%s)", rep.Source, rep)
	}
	for _, q := range rep.Rows {
		if q.Line < 2 || q.Reason == "" {
			t.Errorf("bad quarantine detail: %+v", q)
		}
	}
	// The same input fails fast under the default policy.
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Error("fail-fast read accepted corrupt input")
	}
}

func TestReadARFFQuarantine(t *testing.T) {
	in := "@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\n" +
		"good1,1,2\n" +
		"badnum,xx,1\n" +
		"miscol,1\n" +
		"badnan,NaN,1\n" +
		"good2,2,3\n"
	d, rep, err := ReadARFFWith(strings.NewReader(in), ReadOptions{Policy: Quarantine, Source: "corrupt.arff"})
	if err != nil {
		t.Fatalf("quarantine read failed: %v", err)
	}
	if d.Len() != 2 {
		t.Errorf("surviving samples = %+v", d.Samples)
	}
	if rep.Accepted != 2 || rep.Total != 3 {
		t.Errorf("report = %+v, want 2 accepted / 3 quarantined", rep)
	}
	// Header damage stays fatal even under Quarantine.
	if _, _, err := ReadARFFWith(strings.NewReader("@BOGUS\n"), ReadOptions{Policy: Quarantine}); err == nil {
		t.Error("structural damage was quarantined instead of failing")
	}
}

func TestQuarantineReportDetailCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("label,A,CPI\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("bad,zzz,1\n")
	}
	_, rep, err := ReadCSVWith(strings.NewReader(sb.String()), ReadOptions{Policy: Quarantine})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 100 {
		t.Errorf("Total = %d, want 100", rep.Total)
	}
	if len(rep.Rows) != maxQuarantineDetail {
		t.Errorf("detail rows = %d, want cap %d", len(rep.Rows), maxQuarantineDetail)
	}
}

func TestReadARFFSkipsComments(t *testing.T) {
	in := `% a comment
@RELATION test

@ATTRIBUTE label string
@ATTRIBUTE a NUMERIC
@ATTRIBUTE CPI NUMERIC

@DATA
% data comment
bench,0.5,1.5
`
	d, err := ReadARFF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Samples[0].Label != "bench" || d.Samples[0].Y != 1.5 {
		t.Errorf("parsed = %+v", d.Samples)
	}
}

func TestARFFQuoting(t *testing.T) {
	d := New(&Schema{Response: "the response", Attributes: []string{"attr with space"}})
	_ = d.Append(Sample{X: []float64{1}, Y: 2, Label: "bench mark"})
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "rel name"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "'attr with space'") || !strings.Contains(out, "'rel name'") {
		t.Errorf("quoting missing:\n%s", out)
	}
}
