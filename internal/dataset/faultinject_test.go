//go:build faultinject

package dataset

import (
	"errors"
	"strings"
	"testing"

	"specchar/internal/faultinject"
)

const cleanCSV = "label,A,CPI\na,1,2\nb,3,4\nc,5,6\n"

// An injected mid-stream reader failure must surface as a read error, not
// a truncated-but-successful dataset.
func TestInjectedReaderFailure(t *testing.T) {
	defer faultinject.Deactivate()
	want := errors.New("injected disk failure")
	faultinject.Activate(1, faultinject.Fault{Site: "dataset.ReadCSV.reader", OnCall: 2, Err: want})
	_, err := ReadCSV(strings.NewReader(cleanCSV))
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

// An injected NaN corruption on a parsed row is caught by Append's
// finiteness validation: fail-fast rejects the file, quarantine drops
// exactly the corrupted row and keeps the rest.
func TestInjectedRowCorruption(t *testing.T) {
	defer faultinject.Deactivate()
	faultinject.Activate(1, faultinject.Fault{Site: "dataset.ReadCSV.row", OnCall: 2, CorruptNaN: true})
	if _, err := ReadCSV(strings.NewReader(cleanCSV)); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("fail-fast err = %v, want ErrNonFinite", err)
	}

	faultinject.Deactivate()
	faultinject.Activate(1, faultinject.Fault{Site: "dataset.ReadCSV.row", OnCall: 2, CorruptNaN: true})
	d, rep, err := ReadCSVWith(strings.NewReader(cleanCSV), ReadOptions{Policy: Quarantine})
	if err != nil {
		t.Fatalf("quarantine read: %v", err)
	}
	if d.Len() != 2 || rep.Total != 1 || rep.Accepted != 2 {
		t.Fatalf("d.Len()=%d report=%+v, want 2 survivors / 1 quarantined", d.Len(), rep)
	}
}

// The ARFF sites behave identically.
func TestInjectedARFFCorruption(t *testing.T) {
	defer faultinject.Deactivate()
	in := "@RELATION r\n@ATTRIBUTE label string\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\na,1,2\nb,3,4\n"
	faultinject.Activate(1, faultinject.Fault{Site: "dataset.ReadARFF.row", OnCall: 1, CorruptInf: true, Y: true})
	d, rep, err := ReadARFFWith(strings.NewReader(in), ReadOptions{Policy: Quarantine})
	if err != nil {
		t.Fatalf("quarantine read: %v", err)
	}
	if d.Len() != 1 || rep.Total != 1 {
		t.Fatalf("d.Len()=%d report=%+v, want 1 survivor / 1 quarantined", d.Len(), rep)
	}
}
