// Package dataset defines the sample container shared by the data
// generator, the model-tree learner, and the analysis code, together with
// deterministic random splitting and CSV/ARFF interchange.
//
// A Sample mirrors one row of the paper's input data: the per-instruction
// densities of the 20 PMU-derived predictor events over a 2M-instruction
// interval, the CPI response, and the benchmark the interval came from.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"specchar/internal/obs"
	"specchar/internal/stats"
)

// Schema names the response and predictor columns of a dataset. All
// datasets flowing through one study must share a Schema (pointer equality
// is not required, but column order is significant).
type Schema struct {
	Response   string   // e.g. "CPI"
	Attributes []string // predictor names, in column order
}

// NumAttrs returns the number of predictor columns.
func (s *Schema) NumAttrs() int { return len(s.Attributes) }

// AttrIndex returns the column index of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attributes {
		if a == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	return &Schema{
		Response:   s.Response,
		Attributes: append([]string(nil), s.Attributes...),
	}
}

// Sample is one observation interval.
type Sample struct {
	X     []float64 // predictor values, parallel to Schema.Attributes
	Y     float64   // response (CPI)
	Label string    // benchmark the interval was sampled from
}

// Dataset is an ordered collection of samples under a schema.
type Dataset struct {
	Schema  *Schema
	Samples []Sample
}

// New returns an empty dataset over the schema.
func New(schema *Schema) *Dataset {
	return &Dataset{Schema: schema}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// ErrNonFinite is returned when a sample carries a NaN or infinite value.
// Non-finite values are rejected at ingest because they silently corrupt
// everything downstream: NaN breaks the model tree's sort invariants
// (every comparison is false) and poisons regressions and summary
// statistics.
var ErrNonFinite = errors.New("dataset: non-finite value")

// Append adds a sample, validating its width against the schema and
// rejecting non-finite predictor or response values.
func (d *Dataset) Append(s Sample) error {
	if len(s.X) != d.Schema.NumAttrs() {
		return fmt.Errorf("dataset: sample width %d does not match schema width %d",
			len(s.X), d.Schema.NumAttrs())
	}
	for j, v := range s.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: attribute %q is %v", ErrNonFinite, d.Schema.Attributes[j], v)
		}
	}
	if math.IsNaN(s.Y) || math.IsInf(s.Y, 0) {
		return fmt.Errorf("%w: response %q is %v", ErrNonFinite, d.Schema.Response, s.Y)
	}
	d.Samples = append(d.Samples, s)
	return nil
}

// Ys returns the response column.
func (d *Dataset) Ys() []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.Y
	}
	return out
}

// Xs returns the predictor rows. The returned slices alias the dataset's
// storage; callers must not mutate them.
func (d *Dataset) Xs() [][]float64 {
	out := make([][]float64, len(d.Samples))
	for i := range d.Samples {
		out[i] = d.Samples[i].X
	}
	return out
}

// Columns returns a column-major (SoA) mirror of the predictor matrix:
// Columns()[j][i] is attribute j of sample i. All columns are slices of
// one contiguous float64 slab, so a consumer scanning a single attribute
// walks sequential memory instead of chasing per-row slice pointers —
// the access pattern the model tree's presorted split search is built
// around. The mirror is a copy: it does not alias the dataset's storage
// and does not observe later appends.
func (d *Dataset) Columns() [][]float64 {
	nAttrs := d.Schema.NumAttrs()
	n := len(d.Samples)
	slab := make([]float64, nAttrs*n)
	out := make([][]float64, nAttrs)
	for j := range out {
		out[j] = slab[j*n : (j+1)*n : (j+1)*n]
	}
	for i := range d.Samples {
		for j, v := range d.Samples[i].X {
			out[j][i] = v
		}
	}
	return out
}

// Column returns a copy of predictor column j.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.X[j]
	}
	return out
}

// Labels returns the distinct labels in first-appearance order.
func (d *Dataset) Labels() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range d.Samples {
		if !seen[s.Label] {
			seen[s.Label] = true
			out = append(out, s.Label)
		}
	}
	return out
}

// Shape describes the dataset for a run manifest: sample count, schema
// width, distinct-label count and the response name, under the given
// dataset name. Everything in the shape is deterministic.
func (d *Dataset) Shape(name string) obs.DatasetShape {
	return obs.DatasetShape{
		Name:     name,
		Samples:  d.Len(),
		Attrs:    d.Schema.NumAttrs(),
		Labels:   len(d.Labels()),
		Response: d.Schema.Response,
	}
}

// FilterLabel returns a dataset view containing only samples with the
// label. The samples are shared, not copied.
func (d *Dataset) FilterLabel(label string) *Dataset {
	out := New(d.Schema)
	for _, s := range d.Samples {
		if s.Label == label {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// Concat returns a new dataset holding the samples of d followed by those
// of others. All datasets must have the same schema width.
func (d *Dataset) Concat(others ...*Dataset) (*Dataset, error) {
	out := New(d.Schema)
	out.Samples = append(out.Samples, d.Samples...)
	for _, o := range others {
		if o.Schema.NumAttrs() != d.Schema.NumAttrs() {
			return nil, errors.New("dataset: cannot concat datasets with different schema widths")
		}
		out.Samples = append(out.Samples, o.Samples...)
	}
	return out, nil
}

// Summary describes the response column.
func (d *Dataset) Summary() (stats.Summary, error) {
	return stats.Describe(d.Ys())
}

// Split partitions the dataset into a training set holding approximately
// fraction of the samples and a test set holding the rest, selected by a
// deterministic shuffle of the given RNG. This mirrors the paper's "10%
// randomly selected training set" protocol (Section VI-A2).
func (d *Dataset) Split(rng *RNG, fraction float64) (train, test *Dataset) {
	idx := rng.Perm(len(d.Samples))
	cut := int(float64(len(d.Samples)) * fraction)
	train, test = New(d.Schema), New(d.Schema)
	for i, j := range idx {
		if i < cut {
			train.Samples = append(train.Samples, d.Samples[j])
		} else {
			test.Samples = append(test.Samples, d.Samples[j])
		}
	}
	return train, test
}

// StratifiedSplit partitions like Split but samples the fraction within
// each label independently, so the training set preserves the suite's
// benchmark composition. With millions of samples (the paper's scale) a
// plain random split is implicitly stratified; at simulation scale the
// explicit version avoids composition skew between train and test.
func (d *Dataset) StratifiedSplit(rng *RNG, fraction float64) (train, test *Dataset) {
	train, test = New(d.Schema), New(d.Schema)
	for _, label := range d.Labels() {
		sub := d.FilterLabel(label)
		tr, te := sub.Split(rng, fraction)
		train.Samples = append(train.Samples, tr.Samples...)
		test.Samples = append(test.Samples, te.Samples...)
	}
	return train, test
}

// RandomSubset returns a dataset of n samples drawn without replacement.
// If n exceeds the dataset size the whole (shuffled) dataset is returned.
func (d *Dataset) RandomSubset(rng *RNG, n int) *Dataset {
	if n > len(d.Samples) {
		n = len(d.Samples)
	}
	idx := rng.Perm(len(d.Samples))
	out := New(d.Schema)
	for _, j := range idx[:n] {
		out.Samples = append(out.Samples, d.Samples[j])
	}
	return out
}

// AttrSummaries returns per-attribute descriptive statistics, in schema
// order — the inventory view of a dataset's event densities.
func (d *Dataset) AttrSummaries() ([]stats.Summary, error) {
	if d.Len() == 0 {
		return nil, stats.ErrEmpty
	}
	out := make([]stats.Summary, d.Schema.NumAttrs())
	for j := range out {
		s, err := stats.Describe(d.Column(j))
		if err != nil {
			return nil, err
		}
		out[j] = s
	}
	return out, nil
}
