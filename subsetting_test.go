package specchar

import (
	"fmt"
	"strings"
	"testing"
)

func TestSelectSubsetCPU(t *testing.T) {
	s := fullStudy(t)
	r, err := s.SelectSubset("cpu2006", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.K < 3 || r.K > 15 {
		t.Errorf("k = %d outside the constrained range", r.K)
	}
	if len(r.Representatives) != r.K {
		t.Errorf("%d representatives for k=%d", len(r.Representatives), r.K)
	}
	// Representatives are distinct suite members.
	seen := map[string]bool{}
	valid := map[string]bool{}
	for _, l := range s.CPU.Labels() {
		valid[l] = true
	}
	for _, rep := range r.Representatives {
		if !valid[rep] {
			t.Errorf("representative %q is not a suite benchmark", rep)
		}
		if seen[rep] {
			t.Errorf("duplicate representative %q", rep)
		}
		seen[rep] = true
	}
	// Every benchmark appears in exactly one cluster.
	var members int
	for _, c := range r.Clusters {
		members += len(c)
	}
	if members != len(s.CPU.Labels()) {
		t.Errorf("clusters cover %d benchmarks, want %d", members, len(s.CPU.Labels()))
	}
	// PCA must have compressed: fewer components than raw dimensions,
	// retaining at least the requested variance.
	if r.ComponentsUsed >= s.CPU.Schema.NumAttrs() {
		t.Errorf("PCA kept %d components", r.ComponentsUsed)
	}
	if r.VarianceRetained < 0.90 {
		t.Errorf("variance retained %v < 0.90", r.VarianceRetained)
	}
	// The representative subset must beat the naive subset at matching
	// the suite's behaviour profile.
	if r.SubsetProfileDistance >= r.NaiveProfileDistance {
		t.Errorf("representative subset (%.3f) not better than naive (%.3f)",
			r.SubsetProfileDistance, r.NaiveProfileDistance)
	}
	// Rendering contains the essentials.
	out := r.String()
	for _, want := range []string{"PCA", "silhouette", "representative", "validation"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSelectSubsetFixedK(t *testing.T) {
	s := fullStudy(t)
	r, err := s.SelectSubset("omp2001", 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 4 || len(r.Representatives) != 4 {
		t.Errorf("fixed k not honoured: %+v", r.K)
	}
	if r.Silhouette == 0 {
		t.Error("silhouette not computed for fixed k")
	}
}

func TestSelectSubsetErrors(t *testing.T) {
	s := fullStudy(t)
	if _, err := s.SelectSubset("bogus", 0); err == nil {
		t.Error("unknown suite should error")
	}
}

func TestSubsetReportExperiment(t *testing.T) {
	s := fullStudy(t)
	out, err := s.Run(ExpSubset)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cpu2006") || !strings.Contains(out, "omp2001") {
		t.Errorf("subset report missing suites:\n%s", out)
	}
}

func TestCompareModels(t *testing.T) {
	s := fullStudy(t)
	rows, err := s.CompareModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Metrics.MAE <= 0 || r.Metrics.Correlation <= 0 {
			t.Errorf("%s has degenerate metrics: %+v", r.Name, r.Metrics)
		}
		byName[r.Name] = r.Metrics.Correlation
	}
	// At full scale the model tree must decisively beat the global linear
	// baseline (the paper's motivation for trees over single models), and
	// be competitive with the black-box learners (ref [15]'s finding).
	tree := byName["M5' model tree"]
	lin := byName["global linear regression"]
	if tree <= lin {
		t.Errorf("tree C %v not above linear C %v", tree, lin)
	}
	for name, c := range byName {
		if name == "global linear regression" {
			continue
		}
		if tree < c-0.05 {
			t.Errorf("tree C %v more than 0.05 below %s C %v", tree, name, c)
		}
	}
	// The bagged tree ensemble must be competitive with the single tree.
	for name, c := range byName {
		if strings.HasPrefix(name, "bagged") && (c < tree-0.02) {
			t.Errorf("bagged ensemble C %v well below single tree %v", c, tree)
		}
	}
	report, err := s.ModelComparisonReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "M5' model tree") || !strings.Contains(report, "MLP") {
		t.Errorf("report malformed:\n%s", report)
	}
}

func TestBenchmarkReport(t *testing.T) {
	s := fullStudy(t)
	out, err := s.BenchmarkReport("cpu2006", "429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"429.mcf", "behaviour classes", "distinguishing events",
		"most similar", "most dissimilar", "LM"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// mcf's elevated events must include the memory-hierarchy ones.
	if !strings.Contains(out, "DtlbMiss") && !strings.Contains(out, "L2Miss") && !strings.Contains(out, "PageWalk") {
		t.Errorf("mcf report does not surface memory-hierarchy events:\n%s", out)
	}
	if _, err := s.BenchmarkReport("cpu2006", "nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := s.BenchmarkReport("nope", "429.mcf"); err == nil {
		t.Error("unknown suite should error")
	}
}

func TestImportanceReport(t *testing.T) {
	s := fullStudy(t)
	out, err := s.ImportanceReport(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SPEC CPU2006") || !strings.Contains(out, "SPEC OMP2001") {
		t.Fatalf("report missing suites:\n%s", out)
	}
	// The suites' top important events must reflect their trees: DTLB/L2
	// machinery for CPU2006, the store-block/store/SIMD complex for OMP.
	cpuPart := out[:strings.Index(out, "SPEC OMP2001")]
	ompPart := out[strings.Index(out, "SPEC OMP2001"):]
	cpuTop := firstRankedEvent(cpuPart)
	ompTop := firstRankedEvent(ompPart)
	cpuOK := map[string]bool{"DtlbMiss": true, "PageWalk": true, "L2Miss": true, "L1DMiss": true}
	if !cpuOK[cpuTop] {
		t.Errorf("CPU2006 top importance = %q, want a memory-hierarchy event", cpuTop)
	}
	ompOK := map[string]bool{"LdBlkOlp": true, "Store": true, "SIMD": true, "L1DMiss": true, "L2Miss": true, "MisprBr": true}
	if !ompOK[ompTop] {
		t.Errorf("OMP2001 top importance = %q", ompTop)
	}
}

// firstRankedEvent extracts the event name of rank-1 from an importance
// table rendering.
func firstRankedEvent(s string) string {
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) >= 3 && f[0] == "1" {
			return f[1]
		}
	}
	return ""
}

func TestPhaseReport(t *testing.T) {
	s := fullStudy(t)
	out, err := s.Run(ExpPhases)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mean agreement") {
		t.Fatalf("phase report malformed:\n%s", out)
	}
	// Extract the mean agreement and require detection to be clearly
	// better than chance against the generator's ground truth.
	idx := strings.Index(out, "mean agreement: ")
	var mean float64
	if _, err := fmt.Sscanf(out[idx:], "mean agreement: %f", &mean); err != nil {
		t.Fatal(err)
	}
	if mean < 0.8 {
		t.Errorf("mean phase-detection agreement = %v, want >= 0.8", mean)
	}
}

func TestCPIStackReport(t *testing.T) {
	s := fullStudy(t)
	out, err := s.Run(ExpCPIStack)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "429.mcf") || !strings.Contains(out, "base") {
		t.Fatalf("cpistack report malformed:\n%s", out)
	}
	// mcf's stack must be L2-dominated (its defining property).
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "429.mcf") {
			continue
		}
		f := strings.Fields(line)
		// columns: name CPI base L1D L2 ...
		if len(f) < 5 {
			t.Fatalf("mcf row too short: %q", line)
		}
		var l2 int
		fmt.Sscanf(f[4], "%d%%", &l2)
		if l2 < 30 {
			t.Errorf("mcf L2 share = %d%%, want dominant", l2)
		}
	}
}

func TestPlatformReport(t *testing.T) {
	s := fullStudy(t)
	out, err := s.Run(ExpPlatform)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1MB L2") {
		t.Fatalf("platform report malformed:\n%s", out)
	}
	// The model must NOT transfer across hardware configurations.
	if !strings.Contains(out, "transferable=false") {
		t.Errorf("cross-platform transfer unexpectedly succeeded:\n%s", out)
	}
}

func TestNoiseSweepDegradesGracefully(t *testing.T) {
	s := fullStudy(t)
	points, err := s.NoiseSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Zero noise must reproduce the clean self-transfer metrics.
	clean, _ := s.AssessTransfer("cpu->cpu")
	if points[0].Metrics.MAE != clean.Metrics.MAE {
		t.Errorf("sigma 0 MAE %v != clean MAE %v", points[0].Metrics.MAE, clean.Metrics.MAE)
	}
	// Error must grow monotonically (allowing tiny wiggle) and the
	// heaviest noise must clearly hurt.
	for i := 1; i < len(points); i++ {
		if points[i].Metrics.MAE+1e-9 < points[i-1].Metrics.MAE {
			t.Errorf("MAE not monotone at sigma %v: %v < %v",
				points[i].Sigma, points[i].Metrics.MAE, points[i-1].Metrics.MAE)
		}
	}
	last := points[len(points)-1]
	if last.Metrics.MAE < clean.Metrics.MAE*1.5 {
		t.Errorf("sigma %v barely hurt: %v vs clean %v", last.Sigma, last.Metrics.MAE, clean.Metrics.MAE)
	}
}

func TestLineageReport(t *testing.T) {
	s := fullStudy(t)
	out, err := s.Run(ExpLineage)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CPU2000") {
		t.Fatalf("lineage report malformed:\n%s", out)
	}
	// The lineage result must sit between the poles: extract the three C
	// values and check ordering cross < lineage.
	var lineageC float64
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "accuracy:") {
			fmt.Sscanf(strings.TrimSpace(line), "accuracy:           C=%f", &lineageC)
			fmt.Sscanf(strings.TrimSpace(line), "accuracy:          C=%f", &lineageC)
		}
	}
	cross, _ := s.AssessTransfer("cpu->omp")
	if lineageC <= cross.Metrics.Correlation {
		t.Errorf("lineage C %v not above cross-suite C %v", lineageC, cross.Metrics.Correlation)
	}
}
