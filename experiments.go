package specchar

import (
	"fmt"
	"strings"

	"specchar/internal/characterize"
	"specchar/internal/mtree"
	"specchar/internal/pmu"
	"specchar/internal/suites"
	"specchar/internal/tables"
	"specchar/internal/transfer"
)

// Experiment identifiers, one per table/figure of the paper plus the
// ablations documented in DESIGN.md.
const (
	ExpTable1     = "table1"      // Table I: event catalog
	ExpFigure1    = "figure1"     // Figure 1: CPU2006 model tree + LM equations
	ExpTable2     = "table2"      // Table II: CPU2006 per-benchmark LM distribution
	ExpTable3     = "table3"      // Table III: CPU2006 similarity matrix
	ExpFigure2    = "figure2"     // Figure 2: OMP2001 model tree + LM equations
	ExpTable4     = "table4"      // Table IV: OMP2001 per-benchmark LM distribution
	ExpTTestSelf  = "ttest-self"  // §VI-A2a: CPU2006 -> CPU2006 hypothesis tests
	ExpTTestCross = "ttest-cross" // §VI-A2b: CPU2006 -> OMP2001 hypothesis tests
	ExpAccuracy   = "accuracy"    // §VI-B2: accuracy metrics, both directions
	ExpReverse    = "reverse"     // §VI last ¶: OMP-trained model, both directions
	ExpSweep      = "sweep"       // ablation A3: training-fraction sweep
	ExpSubset     = "subset"      // extension: PCA+clustering representative subsetting
	ExpModels     = "models"      // extension: regression-algorithm comparison (paper ref [15])
	ExpImportance = "importance"  // extension: permutation variable importance per suite
	ExpPhases     = "phases"      // extension: phase detection vs generator ground truth
	ExpCPIStack   = "cpistack"    // extension: exact cycle attribution per benchmark
	ExpPlatform   = "platform"    // extension: cross-platform transferability (paper §III caveat)
	ExpNoise      = "noise"       // extension: measurement-noise robustness sweep
	ExpLineage    = "lineage"     // extension: CPU2006 model on a synthetic CPU2000
	ExpMatrix     = "matrix"      // extension: cross-generation NxN transfer matrix
)

// Experiments lists all experiment identifiers in paper order.
func Experiments() []string {
	return []string{ExpTable1, ExpFigure1, ExpTable2, ExpTable3, ExpFigure2,
		ExpTable4, ExpTTestSelf, ExpTTestCross, ExpAccuracy, ExpReverse, ExpSweep,
		ExpSubset, ExpModels, ExpImportance, ExpPhases, ExpCPIStack, ExpPlatform, ExpNoise,
		ExpLineage, ExpMatrix}
}

// Run executes one experiment by id and returns its rendered report.
func (s *Study) Run(id string) (string, error) {
	switch id {
	case ExpTable1:
		return Table1(), nil
	case ExpFigure1:
		return s.Figure1(), nil
	case ExpTable2:
		return s.Table2()
	case ExpTable3:
		return s.Table3()
	case ExpFigure2:
		return s.Figure2(), nil
	case ExpTable4:
		return s.Table4()
	case ExpTTestSelf:
		a, err := s.AssessTransfer("cpu->cpu")
		if err != nil {
			return "", err
		}
		return a.String(), nil
	case ExpTTestCross:
		a, err := s.AssessTransfer("cpu->omp")
		if err != nil {
			return "", err
		}
		return a.String(), nil
	case ExpAccuracy:
		return s.AccuracyReport()
	case ExpReverse:
		return s.ReverseReport()
	case ExpSweep:
		return s.SweepReport(nil)
	case ExpSubset:
		return s.SubsetReport()
	case ExpModels:
		return s.ModelComparisonReport()
	case ExpImportance:
		return s.ImportanceReport(3)
	case ExpPhases:
		return s.PhaseReport()
	case ExpCPIStack:
		return s.CPIStackReport()
	case ExpPlatform:
		return s.PlatformReport()
	case ExpNoise:
		return s.NoiseReport()
	case ExpLineage:
		return s.LineageReport()
	case ExpMatrix:
		return s.MatrixReport()
	}
	return "", fmt.Errorf("specchar: unknown experiment %q", id)
}

// Table1 renders the paper's Table I: the CPU performance metrics used in
// the study.
func Table1() string {
	t := tables.New("Metric", "PMU event (divided by instructions)", "Description")
	t.AddRow("CPI", "CPU_CLK_UNHALTED.CORE", "CPU clock cycles per instruction (response)")
	for _, e := range pmu.Catalog() {
		t.AddRow(e.Name, e.PMUName, e.Description)
	}
	return "Table I: CPU performance metrics used in this study\n\n" + t.String()
}

// Figure1 renders the SPEC CPU2006 model tree with its leaf linear models
// and split-importance summary (the paper's Figure 1 plus Equations 1-3).
func (s *Study) Figure1() string {
	return renderTreeFigure("Figure 1: SPEC CPU2006 model tree", s.CPUTree, s.CPU.Len())
}

// Figure2 renders the SPEC OMP2001 model tree (the paper's Figure 2 plus
// Equations 5-7).
func (s *Study) Figure2() string {
	return renderTreeFigure("Figure 2: SPEC OMP2001 model tree", s.OMPTree, s.OMP.Len())
}

func renderTreeFigure(title string, tree *mtree.Tree, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d samples, %d leaf models, depth %d)\n\n",
		title, n, tree.NumLeaves(), tree.Depth())
	b.WriteString(tree.Render())
	b.WriteString("\n")
	b.WriteString(tree.RenderModels())
	b.WriteString("\n")
	b.WriteString(tree.RenderSplitSummary())
	return b.String()
}

// Table2 renders the CPU2006 per-benchmark sample distribution over leaf
// linear models (the paper's Table II; contributions >= 20% are starred,
// standing in for the paper's bold).
func (s *Study) Table2() (string, error) {
	profiles, err := characterize.SuiteProfiles(s.CPUTreeCompiled, s.CPU)
	if err != nil {
		return "", err
	}
	return "Table II: sample distribution across linear models by benchmark (SPEC CPU2006)\n\n" +
		characterize.RenderDistribution(profiles, 0.20), nil
}

// Table4 renders the OMP2001 distribution (the paper's Table IV).
func (s *Study) Table4() (string, error) {
	profiles, err := characterize.SuiteProfiles(s.OMPTreeCompiled, s.OMP)
	if err != nil {
		return "", err
	}
	return "Table IV: sample distribution across linear models by benchmark (SPEC OMP2001)\n\n" +
		characterize.RenderDistribution(profiles, 0.20), nil
}

// Table3Names is the benchmark subset shown in the paper's Table III.
var Table3Names = []string{
	"429.mcf", "435.gromacs", "436.cactusADM", "444.namd", "447.dealII",
	"454.calculix", "456.hmmer", "459.GemsFDTD", "464.h264ref", "470.lbm",
	"473.astar", "482.sphinx3",
}

// Table3 renders the pairwise similarity matrix over the paper's Table III
// subset plus the closest and farthest pairs across the whole suite.
func (s *Study) Table3() (string, error) {
	profiles, err := characterize.SuiteProfiles(s.CPUTreeCompiled, s.CPU)
	if err != nil {
		return "", err
	}
	// Exclude the synthetic "Average" row from distance analysis, but
	// keep "Suite" as the paper's last row does.
	perBench := profiles[:len(profiles)-1]
	m := characterize.Similarity(perBench)
	var b strings.Builder
	b.WriteString("Table III: pairwise benchmark difference (percent, Equation 4) — subset\n\n")
	b.WriteString(m.RenderSimilarity(append(append([]string{}, Table3Names...), "Suite")))
	b.WriteString("\nmost similar pairs:\n")
	benchOnly := characterize.Similarity(perBench[:len(perBench)-1]) // drop "Suite" for pair ranking
	for _, p := range benchOnly.ClosestPairs(5) {
		fmt.Fprintf(&b, "  %-18s vs %-18s %5.1f%%\n", p.A, p.B, 100*p.Distance)
	}
	b.WriteString("most dissimilar pairs:\n")
	for _, p := range benchOnly.FarthestPairs(5) {
		fmt.Fprintf(&b, "  %-18s vs %-18s %5.1f%%\n", p.A, p.B, 100*p.Distance)
	}
	return b.String(), nil
}

// AccuracyReport renders the Section VI-B numbers: prediction-accuracy
// metrics of the CPU2006 10% model on its own held-out set and on
// OMP2001.
func (s *Study) AccuracyReport() (string, error) {
	var b strings.Builder
	b.WriteString("Section VI-B: prediction accuracy metrics (CPU2006 10% model)\n\n")
	for _, dir := range []string{"cpu->cpu", "cpu->omp"} {
		a, err := s.AssessTransfer(dir)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s -> %s:\n  %s\n  acceptable (C>=%.2f, MAE<=%.2f): %v\n\n",
			a.TrainName, a.TestName, a.Metrics.String(),
			a.Thresholds.MinCorrelation, a.Thresholds.MaxMAE, a.MetricsTransferable())
	}
	return b.String(), nil
}

// ReverseReport renders the reverse-direction analysis the paper's last
// paragraph of Section VI summarizes: the OMP2001 model is transferable to
// held-out OMP2001 data and not to CPU2006.
func (s *Study) ReverseReport() (string, error) {
	var b strings.Builder
	b.WriteString("Section VI (reverse direction): OMP2001 10% model\n\n")
	for _, dir := range []string{"omp->omp", "omp->cpu"} {
		a, err := s.AssessTransfer(dir)
		if err != nil {
			return "", err
		}
		b.WriteString(a.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// DefaultSweepFractions is the training-fraction grid of ablation A3.
var DefaultSweepFractions = []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50}

// SweepReport renders the training-fraction sweep over CPU2006 (ablation
// A3, the support for the paper's "10% suffices" claim). nil fractions
// means DefaultSweepFractions.
func (s *Study) SweepReport(fractions []float64) (string, error) {
	if fractions == nil {
		fractions = DefaultSweepFractions
	}
	points, err := transfer.Sweep(s.CPU, fractions, s.Config.Tree, s.Config.SplitSeed)
	if err != nil {
		return "", err
	}
	t := tables.New("train fraction", "train n", "C", "MAE", "RMSE", "RAE")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", 100*p.Fraction),
			fmt.Sprintf("%d", p.TrainN),
			fmt.Sprintf("%.4f", p.Metrics.Correlation),
			fmt.Sprintf("%.4f", p.Metrics.MAE),
			fmt.Sprintf("%.4f", p.Metrics.RMSE),
			fmt.Sprintf("%.4f", p.Metrics.RAE),
		)
	}
	return "Ablation A3: CPU2006 training-fraction sweep (model accuracy on held-out remainder)\n\n" + t.String(), nil
}

// Suites returns the two synthetic suite definitions (for callers that
// want to inspect or extend the benchmark inventory).
func Suites() (cpu, omp *suites.Suite) {
	return suites.CPU2006(), suites.OMP2001()
}
